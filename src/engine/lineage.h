// Σ-lineage verdict survival: the rules that let cached verdicts outlive a
// schema edit instead of being orphaned by their canonical keys.
//
// The theory (conf_pods_JohnsonK82) gives two survival arguments:
//
//  * MONOTONE. The chase only grows when dependencies are added: every
//    Σ-chase sequence is a Σ∪Δ-chase prefix, so a homomorphism Q' → chase_Σ(Q)
//    is one into chase_{Σ∪Δ}(Q) — *contained* survives additions. Dually, a
//    counterexample database satisfying Σ satisfies every subset of Σ — *not
//    contained* survives removals. Both hold with no knowledge of the
//    decision's derivation.
//  * EXACT. The chase replays identically when no dependency the derivation
//    actually fired was edited: the chase's used-dependency capture
//    (chase/chase.h) records which INDs minted or cross-arced and which FDs
//    merged; if every removed dependency is outside that set, the new-Σ chase
//    builds the same facts and the old verdict bit is the one a fresh
//    decision would produce. (Σ-derived metadata like the Lemma 5 level
//    bound still drifts with |Σ| — the surviving claim is the verdict, and
//    tests compare exactly that.)
//
// RetagVerdictForDelta turns those arguments into a per-entry decision:
// keep-exact, keep-monotone (VerdictConfidence::kMonotoneBound), or drop.
// Lineage-unknown entries (v1 files, non-chase strategies, prior monotone
// survivors) are treated as touched by any removal — they can only survive
// monotonically, never exactly.
//
// Re-keying: a canonical task key is "V<variant>|S{Σ}|Q{..}|=>|Q{..}" and the
// Σ section contains no '|' (engine/canonical.h), so migrating a surviving
// entry to its new-Σ key is a bounded substring replacement between the first
// two separators — no re-canonicalization of the queries.
//
// LineageDelta is the closed object every tier's ApplyDelta consumes, and
// what the remote protocol's kTierOpApplyDelta ships (Encode/Decode below,
// hostile-input hardened like every other wire codec).
#ifndef CQCHASE_ENGINE_LINEAGE_H_
#define CQCHASE_ENGINE_LINEAGE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "analysis/delta.h"
#include "base/status.h"
#include "deps/dependency_set.h"
#include "engine/serialize.h"

namespace cqchase {

// One schema edit, closed over everything a tier needs to migrate entries:
// the fingerprint-level delta plus the canonical Σ sections (for re-keying)
// and whole-Σ fingerprints (for tagging survivors) of both sides.
struct LineageDelta {
  SigmaDelta delta;
  std::string old_sigma_key;  // CanonicalSigmaKey(old), "S{...}"
  std::string new_sigma_key;  // CanonicalSigmaKey(new)
  uint64_t old_sigma_fp = 0;  // SigmaFingerprint(old)
  uint64_t new_sigma_fp = 0;  // SigmaFingerprint(new)

  bool empty() const { return delta.empty(); }
};

LineageDelta MakeLineageDelta(const DependencySet& old_deps,
                              const DependencySet& new_deps);

// What ApplyDelta decided for one entry.
enum class RetagDecision : uint8_t {
  kUntouched = 0,     // foreign Σ (key section differs) or an empty delta
  kKeepExact = 1,     // survives with its confidence unchanged
  kKeepMonotone = 2,  // survives as VerdictConfidence::kMonotoneBound
  kDrop = 3,          // genuinely touched: re-decide under the new Σ
};

// The Σ section of a canonical task key: the bytes between the first and
// second '|' ("S{...}"). Empty view when the key is malformed.
std::string_view TaskKeySigmaSection(std::string_view task_key);

// `task_key` with its Σ section replaced (caller has already checked the
// section matches the delta's old side).
std::string RekeyTask(std::string_view task_key,
                      std::string_view new_sigma_section);

// The survival rule table. For an entry under the delta's old Σ, decides
// keep/drop and — for keeps — mutates `verdict` in place: survivors get
// sigma_fp = new_sigma_fp; monotone survivors additionally get
// kMonotoneBound confidence and lose their lineage (the used-set described
// the pre-edit chase; a later delta must not exact-keep on its strength).
// Confidence is never upgraded back toward kExact. Pure rule logic — key
// matching is the caller's (ApplyVerdictDelta below does both).
RetagDecision RetagVerdictForDelta(const LineageDelta& ld,
                                   StoredVerdict& verdict);

// The whole per-entry migration: kUntouched unless the key's Σ section is
// the delta's old side; otherwise applies the rule table and, on a keep,
// writes the entry's new-Σ key to `rekeyed`. This is the one routine every
// tier backend (LRU, local store, remote pending buffer, authority map)
// funnels through, so the rules cannot drift between layers.
RetagDecision ApplyVerdictDelta(const LineageDelta& ld,
                                const std::string& key,
                                StoredVerdict& verdict, std::string* rekeyed);

// Aggregate of one ApplyDelta pass over a tier (summed across tiers by
// TierStack::ApplyDelta; surfaced in EngineStats).
struct DeltaReceipt {
  uint64_t examined = 0;       // entries under the delta's old Σ
  uint64_t kept_exact = 0;
  uint64_t kept_monotone = 0;
  uint64_t dropped = 0;
  uint64_t retagged() const { return kept_exact + kept_monotone; }

  void Add(const DeltaReceipt& other) {
    examined += other.examined;
    kept_exact += other.kept_exact;
    kept_monotone += other.kept_monotone;
    dropped += other.dropped;
  }
  void Count(RetagDecision d) {
    if (d == RetagDecision::kUntouched) return;
    ++examined;
    if (d == RetagDecision::kKeepExact) ++kept_exact;
    if (d == RetagDecision::kKeepMonotone) ++kept_monotone;
    if (d == RetagDecision::kDrop) ++dropped;
  }
};

// Wire codec for kTierOpApplyDelta bodies (engine/remote_tier.h). Decode
// treats the bytes as hostile: string lengths and fingerprint counts are
// bounds-checked against the remaining payload before any allocation.
void EncodeLineageDelta(const LineageDelta& ld, std::string& out);
Status DecodeLineageDelta(wire::ByteReader& reader, LineageDelta* ld);

}  // namespace cqchase

#endif  // CQCHASE_ENGINE_LINEAGE_H_
