#include "engine/remote_tier.h"

#include <algorithm>

#include "base/string_util.h"
#include "engine/lineage.h"

namespace cqchase {

// --- protocol helpers --------------------------------------------------------

std::string FrameTierMessage(const std::string& payload) {
  std::string out;
  wire::PutFramed(out, payload);
  return out;
}

Status UnframeTierMessage(const std::string& message, std::string* payload) {
  wire::ByteReader reader(message);
  CQCHASE_RETURN_IF_ERROR(wire::ReadFramed(reader, payload));
  if (reader.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes after protocol message");
  }
  return Status::OK();
}

std::string BuildTierHello() {
  std::string hello;
  wire::PutU8(hello, kTierOpHello);
  wire::PutU32(hello, kTierProtocolVersion);
  return FrameTierMessage(hello);
}

Status ParseTierHelloResponse(const std::string& framed_response,
                              std::string_view peer, uint32_t* peer_version,
                              uint64_t* peer_fingerprint) {
  std::string payload;
  CQCHASE_RETURN_IF_ERROR(UnframeTierMessage(framed_response, &payload));
  wire::ByteReader reader(payload);
  uint8_t op = 0;
  if (!reader.ReadU8(&op) || op != kTierOpHello ||
      !reader.ReadU32(peer_version) || !reader.ReadU64(peer_fingerprint) ||
      reader.remaining() != 0) {
    return Status::InvalidArgument(
        StrCat("peer ", std::string(peer), " sent a malformed hello response"));
  }
  if (*peer_version < kTierMinProtocolVersion) {
    return Status::FailedPrecondition(
        StrCat("peer ", std::string(peer), " speaks tier protocol v",
               *peer_version, ", below this build's minimum v",
               kTierMinProtocolVersion));
  }
  return Status::OK();
}

namespace {

// Short aliases inside this translation unit.
std::string Frame(const std::string& payload) {
  return FrameTierMessage(payload);
}
Status Unframe(const std::string& message, std::string* payload) {
  return UnframeTierMessage(message, payload);
}

}  // namespace

// --- VerdictAuthority --------------------------------------------------------

VerdictAuthority::Options::Options() : fingerprint(StoreSchemaFingerprint()) {}

VerdictAuthority::VerdictAuthority(Options options)
    : options_(std::move(options)) {}

Status VerdictAuthority::Handle(const std::string& request,
                                std::string* response) {
  std::string payload;
  CQCHASE_RETURN_IF_ERROR(Unframe(request, &payload));
  wire::ByteReader reader(payload);
  uint8_t op = 0;
  if (!reader.ReadU8(&op)) {
    return Status::InvalidArgument("empty protocol message");
  }
  std::string reply;
  switch (op) {
    case kTierOpHello: {
      uint32_t version = 0;
      if (!reader.ReadU32(&version) || reader.remaining() != 0) {
        return Status::InvalidArgument("malformed hello");
      }
      // Always answer with our identity, even to a version we do not speak:
      // the client needs the numbers to report a useful mismatch. The client
      // picks min(its version, ours) — the authority just states its own.
      wire::PutU8(reply, kTierOpHello);
      wire::PutU32(reply, options_.protocol_version);
      wire::PutU64(reply, options_.fingerprint);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.hellos;
      break;
    }
    case kTierOpFetch: {
      std::string key;
      if (!reader.ReadString(&key) || reader.remaining() != 0) {
        return Status::InvalidArgument("malformed fetch");
      }
      wire::PutU8(reply, kTierOpFetch);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.fetches;
      auto it = map_.find(key);
      if (it == map_.end()) {
        wire::PutU8(reply, 0);
      } else {
        ++stats_.fetch_hits;
        wire::PutU8(reply, 1);
        EncodeVerdictEntry(it->first, it->second, reply);
      }
      break;
    }
    case kTierOpFetchMany: {
      if (options_.protocol_version < 2) {
        // A v1 authority predates this opcode; answering it would claim a
        // capability the negotiated session does not have.
        return Status::InvalidArgument(
            StrCat("unknown protocol opcode ", int{op}));
      }
      uint32_t count = 0;
      if (!reader.ReadU32(&count)) {
        return Status::InvalidArgument("malformed fetch-many");
      }
      // The count is peer data: bound the reserve by what the payload could
      // possibly hold (a key string costs at least its 4-byte length prefix)
      // before trusting it; a lying count then fails the decode loop.
      std::vector<std::string> keys;
      keys.reserve(std::min<size_t>(count, reader.remaining() / 4));
      for (uint32_t i = 0; i < count; ++i) {
        std::string key;
        if (!reader.ReadString(&key)) {
          return Status::InvalidArgument("malformed fetch-many key");
        }
        keys.push_back(std::move(key));
      }
      if (reader.remaining() != 0) {
        return Status::InvalidArgument("trailing bytes after fetch-many");
      }
      // Response: the request's keys in order, each either the full verdict
      // entry (found=1; the entry carries the key, which the client
      // re-verifies) or the key echoed back (found=0 — the echo lets the
      // client bind each miss to its question even on a reordered/confused
      // peer).
      wire::PutU8(reply, kTierOpFetchMany);
      wire::PutU32(reply, static_cast<uint32_t>(keys.size()));
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.fetch_many_requests;
      stats_.fetch_many_keys += keys.size();
      for (const auto& key : keys) {
        auto it = map_.find(key);
        if (it == map_.end()) {
          wire::PutU8(reply, 0);
          wire::PutString(reply, key);
        } else {
          ++stats_.fetch_many_hits;
          wire::PutU8(reply, 1);
          EncodeVerdictEntry(it->first, it->second, reply);
        }
      }
      break;
    }
    case kTierOpPublish: {
      uint32_t count = 0;
      if (!reader.ReadU32(&count)) {
        return Status::InvalidArgument("malformed publish");
      }
      // Decode the whole batch before touching the map: a frame that turns
      // out malformed at entry N must not have half-applied entries 1..N-1
      // (the client treats the error as "nothing landed" and requeues the
      // batch — the authority's state and stats must agree with that).
      // The count is peer data: bound the reserve by what the payload could
      // possibly hold (an entry is at least 37 bytes — same guard as the
      // snapshot loader) so a hostile count cannot become an allocation
      // blow-up; a lying count then simply fails the decode loop.
      std::vector<std::pair<std::string, StoredVerdict>> batch;
      batch.reserve(std::min<size_t>(count, reader.remaining() / 37));
      for (uint32_t i = 0; i < count; ++i) {
        std::string key;
        StoredVerdict verdict;
        CQCHASE_RETURN_IF_ERROR(DecodeVerdictEntry(reader, &key, &verdict));
        batch.emplace_back(std::move(key), verdict);
      }
      if (reader.remaining() != 0) {
        return Status::InvalidArgument("trailing bytes after publish batch");
      }
      uint64_t accepted = 0;
      // Indexes of batch entries that landed, remembered so the publish
      // sink (the daemon's store hook) runs *outside* mu_: the sink may do
      // I/O and must not serialize every concurrent fetch behind it.
      std::vector<size_t> landed;
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (size_t i = 0; i < batch.size(); ++i) {
          auto& [key, verdict] = batch[i];
          ++stats_.publishes;
          if (options_.max_entries > 0 &&
              map_.size() >= options_.max_entries &&
              map_.find(key) == map_.end()) {
            continue;  // refused at the cap; the accepted count tells the peer
          }
          if (map_.emplace(key, verdict).second) {
            ++accepted;
            if (options_.publish_sink) landed.push_back(i);
          }
        }
        stats_.publishes_accepted += accepted;
      }
      for (size_t i : landed) {
        options_.publish_sink(batch[i].first, batch[i].second);
      }
      wire::PutU8(reply, kTierOpPublish);
      wire::PutU64(reply, accepted);
      break;
    }
    case kTierOpApplyDelta: {
      if (options_.protocol_version < 3) {
        // A v2 authority predates this opcode; clients negotiate down and
        // degrade to drop-only rather than send it.
        return Status::InvalidArgument(
            StrCat("unknown protocol opcode ", int{op}));
      }
      LineageDelta ld;
      CQCHASE_RETURN_IF_ERROR(DecodeLineageDelta(reader, &ld));
      if (reader.remaining() != 0) {
        return Status::InvalidArgument("trailing bytes after apply-delta");
      }
      const DeltaReceipt receipt = ApplyDelta(ld);
      wire::PutU8(reply, kTierOpApplyDelta);
      wire::PutU64(reply, receipt.examined);
      wire::PutU64(reply, receipt.kept_exact);
      wire::PutU64(reply, receipt.kept_monotone);
      wire::PutU64(reply, receipt.dropped);
      break;
    }
    default:
      return Status::InvalidArgument(
          StrCat("unknown protocol opcode ", int{op}));
  }
  *response = Frame(reply);
  return Status::OK();
}

DeltaReceipt VerdictAuthority::ApplyDelta(const LineageDelta& ld) {
  DeltaReceipt receipt;
  if (ld.empty()) return receipt;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Untouched entries first, survivors second, so an entry computed
    // directly under the new Σ always keeps the rekeyed slot (it is at
    // least as precise) — regardless of map iteration order.
    std::unordered_map<std::string, StoredVerdict> next;
    next.reserve(map_.size());
    std::vector<std::pair<std::string, StoredVerdict>> survivors;
    for (auto& [key, verdict] : map_) {
      std::string rekeyed;
      const RetagDecision decision =
          ApplyVerdictDelta(ld, key, verdict, &rekeyed);
      receipt.Count(decision);
      switch (decision) {
        case RetagDecision::kUntouched:
          next.emplace(key, std::move(verdict));
          break;
        case RetagDecision::kKeepExact:
        case RetagDecision::kKeepMonotone:
          survivors.emplace_back(std::move(rekeyed), std::move(verdict));
          break;
        case RetagDecision::kDrop:
          break;
      }
    }
    for (auto& [key, verdict] : survivors) {
      next.emplace(std::move(key), std::move(verdict));
    }
    map_ = std::move(next);
    ++stats_.apply_deltas;
    stats_.delta_retagged += receipt.retagged();
    stats_.delta_dropped += receipt.dropped;
  }
  // Outside mu_ like publish_sink: the daemon's store migration does I/O
  // and must not serialize every concurrent fetch behind it.
  if (options_.apply_delta_sink) options_.apply_delta_sink(ld);
  return receipt;
}

void VerdictAuthority::Put(const std::string& key,
                           const StoredVerdict& verdict) {
  std::lock_guard<std::mutex> lock(mu_);
  map_[key] = verdict;
}

std::optional<StoredVerdict> VerdictAuthority::Lookup(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

size_t VerdictAuthority::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

VerdictAuthority::Stats VerdictAuthority::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// --- RemoteTier --------------------------------------------------------------

RemoteTier::RemoteTier(std::shared_ptr<VerdictTransport> transport,
                       RemoteTierOptions options, uint64_t peer_fingerprint,
                       uint32_t negotiated_version)
    : transport_(std::move(transport)),
      options_(options),
      peer_fingerprint_(peer_fingerprint),
      negotiated_version_(negotiated_version),
      name_(StrCat("remote:", std::string(transport_->Peer()))) {
  stats_.name = name_;
}

Result<std::unique_ptr<RemoteTier>> RemoteTier::Connect(
    std::shared_ptr<VerdictTransport> transport, RemoteTierOptions options) {
  if (transport == nullptr) {
    return Status::InvalidArgument("RemoteTier::Connect: null transport");
  }
  std::string response;
  CQCHASE_RETURN_IF_ERROR(transport->RoundTrip(BuildTierHello(), &response));
  uint32_t peer_version = 0;
  uint64_t peer_fingerprint = 0;
  CQCHASE_RETURN_IF_ERROR(ParseTierHelloResponse(
      response, transport->Peer(), &peer_version, &peer_fingerprint));
  // The session runs at min(peer, ours): against a v1 peer this tier falls
  // back to per-key fetches and never sends kTierOpFetchMany. Fingerprint
  // mismatch is NOT an error here: the tier reports the peer's value and
  // TierStack assembly applies the spec's refuse/quarantine policy — one
  // place owns that decision.
  const uint32_t negotiated = std::min(peer_version, kTierProtocolVersion);
  return std::unique_ptr<RemoteTier>(new RemoteTier(
      std::move(transport), options, peer_fingerprint, negotiated));
}

RemoteTier::~RemoteTier() {
  // Best effort, mirroring VerdictStore's close-time flush: whatever the
  // write-behind task had not shipped yet gets one last chance.
  Flush();
}

void RemoteTier::RememberNegativeLocked(const std::string& key) {
  if (options_.negative_ttl.count() <= 0) return;
  const auto expiry = std::chrono::steady_clock::now() + options_.negative_ttl;
  if (negative_.emplace(key, expiry).second) {
    negative_order_.push_back(key);
    // Bound on the *deque*, not the map: keys leave negative_ early (TTL
    // expiry, Publish of a decided key) while their shed-order entry stays
    // behind, so bounding on negative_.size() would let the deque grow
    // without limit. Shedding a stale entry is a harmless no-op erase; a
    // refreshed key may be shed early — conservative, never wrong.
    while (negative_order_.size() > options_.negative_capacity) {
      negative_.erase(negative_order_.front());
      negative_order_.pop_front();
    }
  } else {
    negative_[key] = expiry;
  }
}

std::optional<StoredVerdict> RemoteTier::Lookup(const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.lookups;
    // A verdict this tier buffered but has not shipped yet (peer down,
    // flush pending) is still this tier's to serve — exactly like the local
    // store's pending entries, and much cheaper than the recompute a
    // transport miss would trigger.
    auto pit = pending_.find(key);
    if (pit != pending_.end()) {
      ++stats_.hits;
      return pit->second;
    }
    auto it = negative_.find(key);
    if (it != negative_.end()) {
      if (std::chrono::steady_clock::now() < it->second) {
        // Known-unknown, still fresh: spare the transport. The TTL bounds how
        // long this answer can lag the authority learning the verdict.
        ++stats_.negative_hits;
        return std::nullopt;
      }
      negative_.erase(it);
      ++stats_.negatives_expired;
    }
  }
  return FetchSingle(key);
}

std::optional<StoredVerdict> RemoteTier::FetchSingle(const std::string& key) {
  // The round trip runs outside mu_: a slow peer must not serialize every
  // other lookup (or the flush) behind this one.
  std::string request_payload;
  wire::PutU8(request_payload, kTierOpFetch);
  wire::PutString(request_payload, key);
  std::string response;
  Status sent = transport_->RoundTrip(Frame(request_payload), &response);

  std::string payload;
  uint8_t op = 0;
  uint8_t found = 0;
  std::string peer_key;
  StoredVerdict verdict;
  bool hit = false;
  bool malformed = false;
  if (sent.ok()) {
    if (!Unframe(response, &payload).ok()) {
      malformed = true;
    } else {
      wire::ByteReader r(payload);
      if (!r.ReadU8(&op) || op != kTierOpFetch || !r.ReadU8(&found) ||
          found > 1) {
        malformed = true;
      } else if (found == 1) {
        // The entry decode range-validates every enum; additionally the key
        // must be the one we asked about — a confused peer's answer for a
        // different key would be a *wrong* verdict, the one failure a cache
        // may never have.
        if (!DecodeVerdictEntry(r, &peer_key, &verdict).ok() ||
            r.remaining() != 0 || peer_key != key) {
          malformed = true;
        } else {
          hit = true;
        }
      } else if (r.remaining() != 0) {
        malformed = true;
      }
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.fetches;
  if (!sent.ok() || malformed) {
    // Unreachable or confused peer: degrade to a miss and back off via the
    // negative cache — cold, never wrong, and not hammering a dead link.
    ++stats_.transport_errors;
    RememberNegativeLocked(key);
    return std::nullopt;
  }
  if (!hit) {
    RememberNegativeLocked(key);
    return std::nullopt;
  }
  ++stats_.hits;
  return verdict;
}

std::vector<std::optional<StoredVerdict>> RemoteTier::LookupMany(
    const std::vector<std::string>& keys) {
  std::vector<std::optional<StoredVerdict>> out(keys.size());
  // Indexes that must go over the wire; everything else is answered locally
  // (pending publishes are hits, fresh negative entries are misses — the
  // stampede guard: a burst of known-unknown keys costs zero round trips).
  std::vector<size_t> need;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.lookups += keys.size();
    const auto now = std::chrono::steady_clock::now();
    for (size_t i = 0; i < keys.size(); ++i) {
      const std::string& key = keys[i];
      auto pit = pending_.find(key);
      if (pit != pending_.end()) {
        ++stats_.hits;
        out[i] = pit->second;
        continue;
      }
      auto it = negative_.find(key);
      if (it != negative_.end()) {
        if (now < it->second) {
          ++stats_.negative_hits;
          continue;  // fresh known-unknown: stays a miss, spares the wire
        }
        negative_.erase(it);
        ++stats_.negatives_expired;
      }
      need.push_back(i);
    }
  }
  if (need.empty()) return out;

  if (negotiated_version_ < 2) {
    // v1 peer: the batched opcode does not exist there; per-key fetches
    // keep correctness at the old one-RTT-per-key cost.
    for (size_t i : need) out[i] = FetchSingle(keys[i]);
    return out;
  }

  const size_t cap =
      options_.max_batch_keys > 0 ? options_.max_batch_keys : need.size();
  for (size_t pos = 0; pos < need.size();) {
    const size_t chunk = std::min(cap, need.size() - pos);
    std::string payload;
    wire::PutU8(payload, kTierOpFetchMany);
    wire::PutU32(payload, static_cast<uint32_t>(chunk));
    for (size_t j = 0; j < chunk; ++j) {
      wire::PutString(payload, keys[need[pos + j]]);
    }
    std::string response;
    Status sent = transport_->RoundTrip(Frame(payload), &response);

    // Decode the whole chunk before accepting any of it: a frame that turns
    // malformed at entry N poisons the entries before it too (a confused
    // peer's "hits" are not trustworthy), so the chunk degrades to misses
    // wholesale.
    std::vector<std::optional<StoredVerdict>> got(chunk);
    bool malformed = false;
    if (sent.ok()) {
      std::string reply;
      if (!Unframe(response, &reply).ok()) {
        malformed = true;
      } else {
        wire::ByteReader r(reply);
        uint8_t op = 0;
        uint32_t count = 0;
        if (!r.ReadU8(&op) || op != kTierOpFetchMany || !r.ReadU32(&count) ||
            count != chunk) {
          malformed = true;
        } else {
          for (size_t j = 0; j < chunk; ++j) {
            // Every answer must bind to the key we asked at this position:
            // a hit carries the key inside its entry, a miss echoes it. A
            // swapped or invented key would be a *wrong* verdict — the one
            // failure a cache may never have.
            const std::string& want = keys[need[pos + j]];
            uint8_t found = 0;
            if (!r.ReadU8(&found) || found > 1) {
              malformed = true;
              break;
            }
            if (found == 1) {
              std::string peer_key;
              StoredVerdict verdict;
              if (!DecodeVerdictEntry(r, &peer_key, &verdict).ok() ||
                  peer_key != want) {
                malformed = true;
                break;
              }
              got[j] = verdict;
            } else {
              std::string echo;
              if (!r.ReadString(&echo) || echo != want) {
                malformed = true;
                break;
              }
            }
          }
          if (!malformed && r.remaining() != 0) malformed = true;
        }
      }
    }

    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.fetches;
    ++stats_.batched_fetches;
    stats_.batched_keys += chunk;
    if (!sent.ok() || malformed) {
      // Unreachable or confused peer: the whole chunk degrades to misses
      // and enters the negative cache, so the burst (and its retries) backs
      // off instead of stampeding a dead or hostile authority.
      ++stats_.transport_errors;
      for (size_t j = 0; j < chunk; ++j) {
        RememberNegativeLocked(keys[need[pos + j]]);
      }
    } else {
      for (size_t j = 0; j < chunk; ++j) {
        if (got[j].has_value()) {
          ++stats_.hits;
          out[need[pos + j]] = std::move(got[j]);
        } else {
          RememberNegativeLocked(keys[need[pos + j]]);
        }
      }
    }
    pos += chunk;
  }
  return out;
}

bool RemoteTier::Publish(const std::string& key, const StoredVerdict& verdict) {
  std::lock_guard<std::mutex> lock(mu_);
  // The key is decided now; a stale "unknown" must not outlive that.
  auto neg = negative_.find(key);
  if (neg != negative_.end()) negative_.erase(neg);
  if (pending_.size() >= options_.max_pending) {
    ++stats_.publishes_dropped;
    return false;
  }
  if (!pending_.emplace(key, verdict).second) return false;
  ++stats_.publishes;
  return true;
}

Status RemoteTier::Flush() {
  std::vector<std::pair<std::string, StoredVerdict>> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.empty()) return Status::OK();
    batch.reserve(pending_.size());
    for (auto& [key, verdict] : pending_) batch.emplace_back(key, verdict);
    pending_.clear();
  }

  std::string payload;
  wire::PutU8(payload, kTierOpPublish);
  wire::PutU32(payload, static_cast<uint32_t>(batch.size()));
  for (const auto& [key, verdict] : batch) {
    EncodeVerdictEntry(key, verdict, payload);
  }
  std::string response;
  Status sent = transport_->RoundTrip(Frame(payload), &response);
  std::string reply;
  uint8_t op = 0;
  uint64_t accepted = 0;
  if (sent.ok()) {
    Status unframed = Unframe(response, &reply);
    if (unframed.ok()) {
      wire::ByteReader r(reply);
      if (!r.ReadU8(&op) || op != kTierOpPublish || !r.ReadU64(&accepted) ||
          r.remaining() != 0) {
        sent = Status::InvalidArgument("malformed publish response");
      }
    } else {
      sent = unframed;
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (!sent.ok()) {
    ++stats_.flush_failures;
    ++stats_.transport_errors;
    // Requeue for a later flush — but inside the max_pending bound:
    // publishers may have refilled the buffer while the round trip failed,
    // and the cap is a memory contract, not a best wish. Entries that no
    // longer fit are shed (counted; a remote tier is a cache, not a
    // ledger); entries published meanwhile win the emplace (they are
    // identical by the purity argument anyway).
    for (auto& [key, verdict] : batch) {
      if (pending_.size() >= options_.max_pending &&
          pending_.find(key) == pending_.end()) {
        ++stats_.publishes_dropped;
        continue;
      }
      pending_.emplace(key, verdict);
    }
    return sent;
  }
  ++stats_.flushes;
  return Status::OK();
}

VerdictTierStats RemoteTier::Stats() const {
  // Transport counters first (its own lock) — never nested under mu_.
  const VerdictTransportStats transport = transport_->TransportStats();
  std::lock_guard<std::mutex> lock(mu_);
  VerdictTierStats s = stats_;
  s.entries = pending_.size();  // locally resident = awaiting ship-out
  s.reconnects = transport.reconnects;
  return s;
}

DeltaReceipt RemoteTier::ApplyDelta(const LineageDelta& ld) {
  DeltaReceipt receipt;
  if (ld.empty()) return receipt;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The negative cache goes wholesale, not per-key: a remembered
    // "authority does not know this key" is a pre-edit observation, and the
    // migration it races (this one, or another engine's) may teach the
    // authority exactly the keys we remembered as unknown. Before this,
    // a Σ edit-and-revert could pin a stale known-miss until its TTL.
    negative_.clear();
    negative_order_.clear();
    // Migrate the pending publish buffer locally — these entries are this
    // tier's resident state (they serve Lookup) and would otherwise ship
    // old-Σ keys to the authority on the next Flush. Untouched entries
    // first, survivors second: a pending entry computed directly under the
    // new Σ keeps the rekeyed slot whatever the iteration order.
    std::unordered_map<std::string, StoredVerdict> keep;
    keep.reserve(pending_.size());
    std::vector<std::pair<std::string, StoredVerdict>> survivors;
    for (auto& [key, verdict] : pending_) {
      std::string rekeyed;
      const RetagDecision decision =
          ApplyVerdictDelta(ld, key, verdict, &rekeyed);
      receipt.Count(decision);
      switch (decision) {
        case RetagDecision::kUntouched:
          keep.emplace(key, std::move(verdict));
          break;
        case RetagDecision::kKeepExact:
        case RetagDecision::kKeepMonotone:
          survivors.emplace_back(std::move(rekeyed), std::move(verdict));
          break;
        case RetagDecision::kDrop:
          break;
      }
    }
    for (auto& [key, verdict] : survivors) {
      keep.emplace(std::move(key), std::move(verdict));
    }
    pending_ = std::move(keep);
  }
  if (negotiated_version_ < 3) {
    // The peer predates kTierOpApplyDelta: degrade to drop-only. Its old-Σ
    // entries become unreachable under new-Σ keys — stale bytes on the
    // authority, never wrong answers here.
    return receipt;
  }

  std::string payload;
  wire::PutU8(payload, kTierOpApplyDelta);
  EncodeLineageDelta(ld, payload);
  std::string response;
  Status sent = transport_->RoundTrip(Frame(payload), &response);
  DeltaReceipt remote;
  bool malformed = false;
  if (sent.ok()) {
    std::string reply;
    if (!Unframe(response, &reply).ok()) {
      malformed = true;
    } else {
      wire::ByteReader r(reply);
      uint8_t op = 0;
      if (!r.ReadU8(&op) || op != kTierOpApplyDelta ||
          !r.ReadU64(&remote.examined) || !r.ReadU64(&remote.kept_exact) ||
          !r.ReadU64(&remote.kept_monotone) || !r.ReadU64(&remote.dropped) ||
          r.remaining() != 0) {
        malformed = true;
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!sent.ok() || malformed) {
    // Unreachable or confused peer: same degradation as the version
    // fallback — the authority keeps (unreachable) old-Σ entries, and a
    // future session's delta can still migrate them.
    ++stats_.transport_errors;
    return receipt;
  }
  receipt.Add(remote);
  return receipt;
}

void RemoteTier::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  negative_.clear();
  negative_order_.clear();
}

bool RemoteTier::HasPendingWrites() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !pending_.empty();
}

}  // namespace cqchase
