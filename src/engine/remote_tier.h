// RemoteTier: a verdict tier whose backing map lives on another party — "the
// log, shipped" (ROADMAP). Canonical task keys are location-independent and
// StoredVerdict is already a versioned wire format, so sharing verdicts
// between engines is a small fetch/publish protocol, not a new subsystem.
//
// The pieces:
//
//   VerdictTransport   — one round trip of length-prefixed bytes. The
//                        protocol lives entirely above this seam, so a TCP
//                        (or UDS, or RDMA) transport is a drop-in: implement
//                        RoundTrip, keep everything else.
//   InProcessTransport — the loopback shipped today: calls a
//                        VerdictAuthority in the same process directly. Two
//                        engines in one process (or one test) share a
//                        verdict authority with zero sockets.
//   VerdictAuthority   — the server half: an in-memory canonical-key →
//                        verdict map answering hello/fetch/publish. Its
//                        fingerprint is configurable so tests (and future
//                        proxies for older peers) can exercise the mismatch
//                        path.
//   RemoteTier         — the client half, implementing VerdictTier:
//                        Lookup fetches over the transport, Publish buffers
//                        and Flush ships the batch (write-behind, like the
//                        local store's append log).
//
// Protocol: every message is one wire::PutFramed record (u32 length + u64
// FNV-1a checksum + payload); the payload starts with a u8 opcode. A hello
// exchange runs at connect: the peer reports its protocol version and its
// StoreSchemaFingerprint, and TierStack assembly refuses or quarantines the
// tier on mismatch (engine/tier.h) — verdicts never flow between parties
// that disagree on the key scheme.
//
// Version negotiation: the client states its version in the hello, the peer
// answers with its own, and the session runs at min(client, peer) — so a v2
// client pipelines kTierOpFetchMany against a v2 authority but falls back to
// per-key kTierOpFetch against a v1 peer, and the in-process loopback keeps
// working across the bump. Versions below kTierMinProtocolVersion refuse.
//
// Negative entries: a fetch miss ("authority does not know this key") is
// remembered locally for RemoteTierOptions::negative_ttl, so a hot unknown
// key does not hammer the transport — but only for the TTL, so a peer can
// never pin "unknown" forever once the authority learns the verdict.
// Transport errors degrade to misses the same way: a tier that cannot
// answer is cold, never wrong.
#ifndef CQCHASE_ENGINE_REMOTE_TIER_H_
#define CQCHASE_ENGINE_REMOTE_TIER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/status.h"
#include "engine/serialize.h"
#include "engine/tier.h"

namespace cqchase {

// Version of the fetch/publish message layer. Bump on any change to the
// opcodes or their bodies; a session runs at min(client, peer) and versions
// below kTierMinProtocolVersion refuse at hello. History:
//   1 — hello / fetch / publish
//   2 — kTierOpFetchMany batched fetch
//   3 — kTierOpApplyDelta schema-delta migration
inline constexpr uint32_t kTierProtocolVersion = 3;
inline constexpr uint32_t kTierMinProtocolVersion = 1;

// Opcodes (first payload byte; responses echo their request's opcode).
inline constexpr uint8_t kTierOpHello = 1;
inline constexpr uint8_t kTierOpFetch = 2;
inline constexpr uint8_t kTierOpPublish = 3;
inline constexpr uint8_t kTierOpFetchMany = 4;   // protocol v2+
inline constexpr uint8_t kTierOpApplyDelta = 5;  // protocol v3+

// Upper bound on one protocol message (framed). Shared by every transport
// and the authority server: a length prefix past this is a confused or
// hostile peer, rejected before any allocation. Generous for the real
// payloads (a verdict entry is ~100 bytes; a 16 MiB frame holds a ~150k-key
// batch).
inline constexpr size_t kTierMaxFrameBytes = 16u << 20;

// Monotone transport-level counters, surfaced through RemoteTier::Stats so
// bench records capture wire behavior (reconnect churn, dead-peer errors)
// per tier. In-process transports keep the all-zero default.
struct VerdictTransportStats {
  uint64_t round_trips = 0;  // RoundTrip calls that reached the wire
  uint64_t errors = 0;       // failed round trips (incl. backoff fast-fails)
  uint64_t connects = 0;     // successful connection + handshake sequences
  uint64_t reconnects = 0;   // connects after the first (link was lost)
};

// One request/response round trip of framed bytes. Implementations must be
// thread-safe (lookups and the write-behind flush run on different executor
// workers) and must either deliver the peer's complete response or return a
// non-OK status — a short read is an error, never a truncated answer.
class VerdictTransport {
 public:
  virtual ~VerdictTransport() = default;

  // Sends one framed message, receives one framed reply into `*response`
  // (overwritten, not appended).
  virtual Status RoundTrip(const std::string& request,
                           std::string* response) = 0;

  // Stable label for tier names and diagnostics ("loopback", "tcp:host").
  virtual std::string_view Peer() const = 0;

  // Wire-level counters; the default (all zero) suits in-process transports.
  virtual VerdictTransportStats TransportStats() const { return {}; }
};

// --- protocol helpers (shared by the tier, the TCP transport, the sharded
// --- router and the authority server) ----------------------------------------

// Frames one payload as a complete protocol message.
std::string FrameTierMessage(const std::string& payload);

// Unframes one message; the protocol is one frame per message, so trailing
// bytes mean a confused peer and the message is rejected wholesale.
Status UnframeTierMessage(const std::string& message, std::string* payload);

// The framed hello request this build sends (opcode + kTierProtocolVersion).
std::string BuildTierHello();

// Parses a framed hello response; `peer` labels the error message. Refuses
// malformed payloads and versions below kTierMinProtocolVersion; fingerprint
// judgment is the caller's (TierStack assembly owns that policy).
Status ParseTierHelloResponse(const std::string& framed_response,
                              std::string_view peer, uint32_t* peer_version,
                              uint64_t* peer_fingerprint);

// The authority half of the protocol: holds the shared verdict map and
// answers hello/fetch/publish. Thread-safe; one authority typically serves
// many transports/engines.
class VerdictAuthority {
 public:
  struct Options {
    // Reported at hello. Overridable so tests can stand in for a peer built
    // against a different canonical-key scheme; production authorities keep
    // the default (this build's fingerprint).
    uint64_t fingerprint;
    // Map bound; publishes past it are refused (accepted count in the
    // response says how many landed). 0 = unbounded.
    uint64_t max_entries = 0;
    // Reported at hello; requests for opcodes newer than this are rejected
    // as unknown. Overridable so tests can stand in for an old peer (a v1
    // authority never serves kTierOpFetchMany); production keeps the
    // default (this build's version).
    uint32_t protocol_version = kTierProtocolVersion;
    // Called once per *accepted* publish entry, outside the authority's
    // lock — the hook a daemon uses to back the map with a VerdictStore.
    // Must be thread-safe; must outlive every Handle call.
    std::function<void(const std::string& key, const StoredVerdict& verdict)>
        publish_sink;
    // Called once per applied schema delta, outside the authority's lock and
    // after the in-memory map is migrated — the hook a daemon uses to drive
    // the same delta through its backing VerdictStore. Same lifetime and
    // thread-safety contract as publish_sink.
    std::function<void(const LineageDelta& ld)> apply_delta_sink;
    Options();
  };

  explicit VerdictAuthority(Options options = Options());

  // Decodes one framed request, dispatches, encodes the framed response.
  // Non-OK only for bytes that do not decode as a protocol message — a
  // well-formed fetch of an unknown key is a successful "not found".
  Status Handle(const std::string& request, std::string* response);

  // Direct server-side access (seeding, inspection; bypasses the protocol).
  void Put(const std::string& key, const StoredVerdict& verdict);
  std::optional<StoredVerdict> Lookup(const std::string& key) const;
  size_t size() const;

  // Migrates the authority's map per the survival rules (engine/lineage.h):
  // what kTierOpApplyDelta dispatches to, also callable directly by a
  // colocated owner. Runs apply_delta_sink (if set) after the map flips.
  DeltaReceipt ApplyDelta(const LineageDelta& ld);

  struct Stats {
    uint64_t hellos = 0;
    uint64_t fetches = 0;            // single-key fetch requests
    uint64_t fetch_hits = 0;
    uint64_t fetch_many_requests = 0;  // batched fetch round trips served
    uint64_t fetch_many_keys = 0;      // keys asked across those batches
    uint64_t fetch_many_hits = 0;
    uint64_t publishes = 0;          // entries offered by publish requests
    uint64_t publishes_accepted = 0; // newly inserted (dedup + cap refusals
                                     // excluded)
    uint64_t apply_deltas = 0;       // schema deltas applied to the map
    uint64_t delta_retagged = 0;     // entries that survived a delta
    uint64_t delta_dropped = 0;      // entries a delta invalidated
  };
  Stats stats() const;

 private:
  const Options options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, StoredVerdict> map_;
  Stats stats_;
};

// The loopback transport: RoundTrip calls the authority synchronously in
// this process. What a TCP transport will do with a socket, this does with
// a function call — the tier above cannot tell the difference.
class InProcessTransport final : public VerdictTransport {
 public:
  explicit InProcessTransport(std::shared_ptr<VerdictAuthority> authority)
      : authority_(std::move(authority)) {}

  Status RoundTrip(const std::string& request, std::string* response) override {
    return authority_->Handle(request, response);
  }
  std::string_view Peer() const override { return "loopback"; }

 private:
  std::shared_ptr<VerdictAuthority> authority_;
};

struct RemoteTierOptions {
  // How long a fetch miss (or transport error) is served from the local
  // negative cache before the key is fetched again. 0 = every lookup goes to
  // the transport.
  std::chrono::milliseconds negative_ttl{250};
  // Bound on remembered negative entries (oldest shed first).
  size_t negative_capacity = 4096;
  // Bound on buffered publishes awaiting Flush (newest refused past it,
  // counted in publishes_dropped — the authority just misses those entries;
  // a remote tier is a cache, not a ledger).
  size_t max_pending = 1 << 16;
  // Bound on keys per kTierOpFetchMany round trip; a LookupMany past it
  // splits into multiple batches. Keeps one burst's frame well under
  // kTierMaxFrameBytes with room for large canonical keys.
  size_t max_batch_keys = 512;
};

class RemoteTier final : public VerdictTier {
 public:
  // Runs the hello handshake on `transport`. Fails on transport errors and
  // protocol-version mismatches; a *fingerprint* mismatch succeeds here and
  // is judged at TierStack assembly (Fingerprint() reports what the peer
  // said), so the stack's refuse/quarantine policy owns that decision.
  static Result<std::unique_ptr<RemoteTier>> Connect(
      std::shared_ptr<VerdictTransport> transport,
      RemoteTierOptions options = {});

  // Best-effort final flush (matches the local store's close behavior).
  ~RemoteTier() override;

  std::string_view Name() const override { return name_; }
  std::optional<StoredVerdict> Lookup(const std::string& key) override;
  // Batched lookup: pending/negative-cached keys are answered locally, the
  // rest go over the wire in kTierOpFetchMany chunks of at most
  // options_.max_batch_keys (per-key kTierOpFetch against a v1 peer).
  // Missed keys — including whole chunks lost to transport errors — enter
  // the negative cache, so a burst can't stampede the authority.
  std::vector<std::optional<StoredVerdict>> LookupMany(
      const std::vector<std::string>& keys) override;
  bool Publish(const std::string& key, const StoredVerdict& verdict) override;
  Status Flush() override;
  VerdictTierStats Stats() const override;
  uint64_t Fingerprint() const override { return peer_fingerprint_; }
  // Always clears the negative cache (a remembered "authority does not know
  // this key" predates the edit and must not outlive it) and migrates the
  // pending publish buffer locally; ships the delta to the peer when the
  // negotiated session speaks kTierOpApplyDelta (v3+). Against an older
  // peer it degrades to drop-only: the authority's old-Σ entries simply
  // become unreachable under new-Σ keys — stale bytes, never wrong answers.
  DeltaReceipt ApplyDelta(const LineageDelta& ld) override;
  void Clear() override;  // forgets negative entries; pending publishes stay
  bool HasPendingWrites() const override;

  // min(kTierProtocolVersion, peer's hello version): the level this session
  // speaks. Batched fetch needs >= 2.
  uint32_t negotiated_version() const { return negotiated_version_; }

 private:
  RemoteTier(std::shared_ptr<VerdictTransport> transport,
             RemoteTierOptions options, uint64_t peer_fingerprint,
             uint32_t negotiated_version);

  // Inserts `key` into the negative cache (expiry now + TTL), shedding the
  // oldest entry past the capacity bound. Caller holds mu_.
  void RememberNegativeLocked(const std::string& key);

  // One kTierOpFetch round trip for `key`, with hit/negative-cache
  // accounting — the shared tail of Lookup and the v1 LookupMany fallback.
  // Caller must NOT hold mu_.
  std::optional<StoredVerdict> FetchSingle(const std::string& key);

  const std::shared_ptr<VerdictTransport> transport_;
  const RemoteTierOptions options_;
  const uint64_t peer_fingerprint_;
  const uint32_t negotiated_version_;
  const std::string name_;

  mutable std::mutex mu_;
  // key → expiry. negative_order_ is the shed order (insertion FIFO; a
  // refreshed key may be shed early — conservative, never wrong).
  std::unordered_map<std::string, std::chrono::steady_clock::time_point>
      negative_;
  std::deque<std::string> negative_order_;
  // Publishes buffered for the next Flush, deduplicated by key.
  std::unordered_map<std::string, StoredVerdict> pending_;
  VerdictTierStats stats_;
};

}  // namespace cqchase

#endif  // CQCHASE_ENGINE_REMOTE_TIER_H_
