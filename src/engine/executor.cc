#include "engine/executor.h"

#include <algorithm>
#include <utility>

namespace cqchase {

Executor::Executor(size_t num_workers) {
  const size_t n = std::max<size_t>(num_workers, 1);
  queues_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Workers drain every remaining queued task before exiting (see
  // WorkerLoop), so joining here guarantees all promised work ran.
  for (std::thread& t : threads_) t.join();
}

void Executor::EnsureStarted() {
  // Double-checked: the atomic-free read of started_ would race, so the fast
  // path re-checks under the lock. Submission is not hot enough to justify
  // more cleverness.
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  threads_.reserve(queues_.size());
  for (size_t i = 0; i < queues_.size(); ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void Executor::Submit(std::function<void()> task, bool high_priority) {
  TaskOptions options;
  options.high_priority = high_priority;
  Submit(std::move(task), std::move(options));
}

void Executor::Submit(std::function<void()> task, TaskOptions options) {
  EnsureStarted();
  Task item;
  item.run = std::move(task);
  item.deadline = options.deadline;
  item.on_expired = std::move(options.on_expired);
  const size_t target =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    if (options.high_priority) {
      queues_[target]->tasks.push_front(std::move(item));
    } else {
      queues_[target]->tasks.push_back(std::move(item));
    }
    // Inside the deque lock: a popper acquires this same lock before its
    // fetch_sub, so pending_ can never be decremented for a task whose
    // increment has not happened yet (an after-unlock increment would let a
    // racing TryPop underflow the counter to SIZE_MAX).
    pending_.fetch_add(1, std::memory_order_release);
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  // Lock-then-notify so a worker that just found pending_ == 0 cannot miss
  // the wakeup between its predicate check and its wait.
  {
    std::lock_guard<std::mutex> lock(mu_);
  }
  cv_.notify_one();
}

bool Executor::TryPop(size_t self, Task& out) {
  {
    std::lock_guard<std::mutex> lock(queues_[self]->mu);
    if (!queues_[self]->tasks.empty()) {
      out = std::move(queues_[self]->tasks.front());
      queues_[self]->tasks.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  for (size_t k = 1; k < queues_.size(); ++k) {
    const size_t victim = (self + k) % queues_.size();
    std::lock_guard<std::mutex> lock(queues_[victim]->mu);
    if (!queues_[victim]->tasks.empty()) {
      // Steal from the back: the front is the victim's next task, and the
      // back is the coldest work — classic work-stealing order.
      out = std::move(queues_[victim]->tasks.back());
      queues_[victim]->tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void Executor::WorkerLoop(size_t self) {
  Task task;
  while (true) {
    if (TryPop(self, task)) {
      // Shed-at-dequeue: a task that spent its whole deadline in the queue
      // is already kDeadlineExceeded — complete it through its (cheap)
      // expiration handler instead of letting a corpse occupy this worker
      // slot until its first control poll says the obvious.
      if (task.deadline.has_value() && task.on_expired &&
          std::chrono::steady_clock::now() >= *task.deadline) {
        task.on_expired();
        shed_.fetch_add(1, std::memory_order_relaxed);
      } else {
        task.run();
        executed_.fetch_add(1, std::memory_order_relaxed);
      }
      task = Task{};  // release captures before sleeping
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_ && pending_.load(std::memory_order_acquire) == 0) return;
    cv_.wait(lock, [this] {
      return stopping_ || pending_.load(std::memory_order_acquire) > 0;
    });
    // Re-loop: on stop we still drain (TryPop until empty), then the
    // pending_ == 0 check above lets us exit.
  }
}

Executor::TaskGroup::TaskGroup(Executor* executor)
    : executor_(executor), state_(std::make_shared<State>()) {}

Executor::TaskGroup::~TaskGroup() { Join(); }

void Executor::TaskGroup::Spawn(std::function<void()> fn,
                                TaskOptions options) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->unstarted.push_back(std::move(fn));
  }
  // The pool runner claims *a* group task, not necessarily the one spawned
  // with it — only the count matters. If Join already drained the deque
  // (helping), the runner is a cheap no-op; if the runner was shed past a
  // deadline, the body simply stays queued for Join to run inline.
  executor_->Submit(
      [state = state_] {
        std::function<void()> task;
        {
          std::lock_guard<std::mutex> lock(state->mu);
          if (state->unstarted.empty()) return;
          task = std::move(state->unstarted.front());
          state->unstarted.pop_front();
          ++state->active;
        }
        task();
        {
          std::lock_guard<std::mutex> lock(state->mu);
          --state->active;
        }
        state->cv.notify_all();
      },
      std::move(options));
}

void Executor::TaskGroup::Join() {
  std::unique_lock<std::mutex> lock(state_->mu);
  while (true) {
    if (!state_->unstarted.empty()) {
      // Helping join: run unstarted group work on this thread instead of
      // sleeping — the deadlock-freedom argument for nested fork/join.
      std::function<void()> task = std::move(state_->unstarted.front());
      state_->unstarted.pop_front();
      ++state_->active;
      lock.unlock();
      task();
      lock.lock();
      --state_->active;
      continue;
    }
    if (state_->active == 0) return;
    state_->cv.wait(lock);
  }
}

void ExecutorTaskRunner::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (executor_ == nullptr || tasks.size() == 1) {
    for (std::function<void()>& task : tasks) task();
    return;
  }
  Executor::TaskGroup group(executor_);
  for (std::function<void()>& task : tasks) group.Spawn(std::move(task));
  group.Join();
}

Executor::StatsSnapshot Executor::stats() const {
  StatsSnapshot s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.executed = executed_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.queue_depth = pending_.load(std::memory_order_relaxed);
  s.workers = queues_.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.started = started_;
  }
  return s;
}

}  // namespace cqchase
