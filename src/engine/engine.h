// ContainmentEngine: the single entry point for every containment /
// equivalence / minimization / finite-containment question the library can
// answer. The engine layers, bottom to top:
//
//  1. Σ-classification (engine/sigma_class.h): AnalyzeSigma picks the
//     cheapest sound strategy per task — pure homomorphism for empty Σ, the
//     finite FD chase for FD-only Σ, the PSPACE frontier-streaming procedure
//     for IND-only Σ with single-conjunct Q', Lemma-5-bounded iterative
//     deepening for the remaining decidable classes, and a sound
//     semi-decision (opt-in) for general mixes.
//  2. Canonicalization + memoization (engine/canonical.h): verdicts are
//     cached under an isomorphism-invariant key of (Q, Q', Σ, variant), so a
//     re-ask of the same question — even with renamed variables or permuted
//     conjuncts — returns instantly (this is also what absorbs repeated or
//     isomorphic candidates in greedy Σ-minimization, whose chased side
//     changes on every probe); chase prefixes are cached under an exact key
//     of (Q, Σ, variant) and resumed, so loops that probe one fixed Q
//     against many Q' (equivalence checks, repeated asks about one query)
//     stop re-chasing. All three caches (verdict, Σ-analysis, chase prefix)
//     evict least-recently-used with independent capacity knobs; chase
//     prefixes are reference-counted and *shared* — N concurrent askers of
//     the same exact (Q, Σ, variant) serialize on that one entry's mutex
//     and extend a single chase instead of re-chasing from scratch.
//     Minimization's candidate-side probes are tagged non-prefix-cacheable
//     (their exact keys never repeat, so caching them would only pin dead
//     chases until eviction).
//     The verdict side of this layer is a composable *tier stack*
//     (engine/tier.h): EngineConfig::tiers declares a hierarchy of
//     VerdictTier backends probed cheapest-first — by default just the
//     in-memory LRU; optionally a persistent VerdictStore (engine/store.h)
//     behind it, a RemoteTier sharing a verdict authority with other
//     engines (engine/remote_tier.h), or any backend implementing the
//     interface. A miss at tier N falls through to N+1; a hit is promoted
//     into every cheaper tier; a hit at any non-LRU tier bypasses the chase
//     entirely; new verdicts fan out to every write-through tier and reach
//     disk/network through write-behind flushes on the executor — the hot
//     path never waits on I/O. EngineConfig::store_path survives as a shim
//     that expands to one local-store tier.
//  3. Async request execution (engine/request.h + engine/executor.h):
//     Submit(ContainmentRequest) -> EngineFuture<EngineOutcome> runs every
//     request on a persistent work-stealing thread pool shared across calls.
//     Requests own their inputs, carry per-request policy (deadline,
//     priority, want_certificate, semi-decision override), support
//     cooperative cancellation threaded through the chase deepening loop,
//     and can return a Theorem 2 certificate extracted from the *same*
//     chase the decision ran. CheckMany and Certify survive as thin
//     blocking shims over Submit + wait.
//
// Adding a new decision strategy is a three-step recipe (see README):
// extend DecisionStrategy + ChooseStrategy in engine/sigma_class.h, add the
// execution arm in ContainmentEngine::DecideUncached, and cover the route in
// tests/engine_dispatch_test.cc.
//
// All defaults (chase limits, variant, semi-decision policy) flow from
// EngineConfig::containment — call sites no longer restate them; a
// RequestOptions can override the per-request subset of that policy.
#ifndef CQCHASE_ENGINE_ENGINE_H_
#define CQCHASE_ENGINE_ENGINE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "chase/control.h"
#include "core/certificate.h"
#include "core/containment.h"
#include "core/minimize.h"
#include "cq/query.h"
#include "data/instance.h"
#include "deps/dependency_set.h"
#include "engine/canonical.h"
#include "engine/executor.h"
#include "engine/lru_cache.h"
#include "engine/request.h"
#include "engine/sigma_class.h"
#include "engine/store.h"
#include "engine/tier.h"
#include "finite/finite_containment.h"

namespace cqchase {

struct EngineConfig {
  // The single source of decision-procedure defaults (limits, chase variant,
  // semi-decision policy). Everything the engine runs — containment,
  // equivalence, minimization, streaming, FD unification — derives its
  // budgets from here. RequestOptions can override the per-request subset.
  ContainmentOptions containment;

  // Layer 2: verdict + Σ-analysis + chase-prefix memoization. Each cache
  // evicts least-recently-used against its own bound (a capacity of 0
  // disables that cache alone; enable_cache = false disables all three).
  bool enable_cache = true;
  size_t verdict_cache_capacity = 1 << 16;  // canonical-key verdicts
  size_t sigma_cache_capacity = 1 << 12;    // Σ classifications
  size_t chase_cache_capacity = 32;         // shared chase prefixes retained

  // Layer 2.5: the verdict tier stack (engine/tier.h), probed in order on
  // every cacheable check — miss at tier N falls through to N+1, a hit is
  // promoted into every cheaper tier, new verdicts fan out to every
  // write-through tier and are flushed write-behind on the executor.
  //
  // Empty (the default) assembles the classic single in-memory LRU of
  // verdict_cache_capacity entries — zero behavior change — plus, when
  // store_path below is set, one local-store tier behind it. A non-empty
  // vector is taken verbatim (store_path, if also set, appends one
  // local-store tier at the end; order the stack yourself with
  // TierSpec::LocalStore to put it elsewhere):
  //
  //   config.tiers = {TierSpec::Lru(1 << 16),
  //                   TierSpec::LocalStore("/var/cq/verdicts"),
  //                   TierSpec::Remote(transport)};
  //
  // Every tier's schema fingerprint is checked at assembly; a mismatched or
  // unconstructible tier is refused or quarantined per its
  // TierSpec::on_mismatch (see tier_descriptors()). The stack rides the
  // memoization layer, so it requires enable_cache (store_status() reports
  // kFailedPrecondition otherwise).
  std::vector<TierSpec> tiers;

  // Back-compat shim for the pre-stack config surface: a non-empty path
  // expands to one TierSpec::LocalStore(store_path) tier — verdicts survive
  // process restarts, a store hit bypasses the chase, quarantine-and-
  // rebuild on any format guard failure (see store_status()); a store
  // directory has exactly one owner at a time (flock).
  std::string store_path;

  // Layer 1: route IND-only single-conjunct tasks to the PSPACE streaming
  // path. Streaming verdicts carry no witness homomorphism; callers that
  // need the witness (or byte-identical legacy reports) disable this.
  bool route_streaming_single_conjunct = true;

  // Layer 3: width of the shared work-stealing executor Submit runs on.
  // 0 means "derive": num_threads when that is > 1 (so the legacy CheckMany
  // fan-out knob keeps sizing the pool it now runs on), else the hardware
  // concurrency. Workers start lazily on the first Submit.
  size_t executor_threads = 0;

  // Legacy CheckMany fan-out width. <= 1 means the shim evaluates the batch
  // sequentially inline (exact historical behavior); > 1 means it submits
  // the batch to the executor and waits.
  size_t num_threads = 1;
};

// One containment question for the legacy batch API. Pointers must stay
// valid for the duration of the CheckMany call; all queries must share the
// engine's catalog and symbol table. New code should build a
// ContainmentRequest (engine/request.h), which owns its inputs and cannot
// dangle.
struct ContainmentTask {
  const ConjunctiveQuery* q = nullptr;
  const ConjunctiveQuery* q_prime = nullptr;
  const DependencySet* deps = nullptr;
};

// Monotone counters (plus two executor gauges); read via stats(). Counters
// are aggregated across executor workers and synchronous callers alike.
struct EngineStats {
  uint64_t checks = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t chase_prefix_reuses = 0;
  uint64_t chases_built = 0;
  // Tier stack: verdicts served from / published to the non-LRU tiers,
  // split by backend kind (derived from the per-tier counters — see
  // tier_stats() for the full per-tier breakdown). A store/remote hit is
  // counted on top of the cache_miss that preceded it (the in-memory tier
  // did miss); tier-served decisions build no chase.
  uint64_t store_hits = 0;
  uint64_t store_writes = 0;
  uint64_t remote_hits = 0;
  uint64_t remote_writes = 0;
  // Σ-lineage (EvolveSigma + tier hits): entries a schema delta kept —
  // re-keyed in place, exactly or as a monotone bound — vs entries it
  // invalidated; monotone_hits counts tier hits served at kMonotoneBound
  // confidence (sound for plain checks, but a differential suite may want
  // to re-decide them — see engine/lineage.h).
  uint64_t entries_retagged = 0;
  uint64_t entries_dropped = 0;
  uint64_t monotone_hits = 0;
  // Async surface.
  uint64_t submits = 0;
  uint64_t deadline_expirations = 0;
  uint64_t cancellations = 0;
  uint64_t certificates_built = 0;
  // Chase-core rollups (ChaseStats deltas harvested per asker turn —
  // shared-prefix chases attribute work to the turn that drove it).
  // segments_built / bulk_ind_applications stay zero under
  // ChaseCoreMode::kScalar; index_rebuilds counts scalar pending/witness
  // rebuilds and bulk witness-group rebuilds alike.
  uint64_t chase_steps = 0;
  uint64_t chase_index_rebuilds = 0;
  uint64_t segments_built = 0;
  uint64_t bulk_ind_applications = 0;
  // INDs the bulk core pruned as statically unreachable (Σ reliance
  // analysis); zero under kScalar and when every IND is reachable.
  uint64_t inds_pruned = 0;
  // Parallel-core rollups (ChaseStats; zero unless kParallel ran):
  // (level, IND) batches committed by parallel sweeps, and level sweeps the
  // shadow FD simulation aborted to the serial path because a merge was
  // predicted.
  uint64_t parallel_batches = 0;
  uint64_t parallel_serialized_levels = 0;
  // Executor health (Executor::stats passthrough): tasks/steals are
  // monotone, queue_depth (queued, not yet started) and workers are gauges.
  uint64_t executor_tasks = 0;
  uint64_t executor_steals = 0;
  uint64_t executor_queue_depth = 0;
  uint64_t executor_workers = 0;
  std::array<uint64_t, kNumStrategies> by_strategy = {};
};

class ContainmentEngine {
 public:
  // The engine serves one catalog + symbol-table universe; every query and
  // dependency set passed in must be built against them. `catalog` and
  // `symbols` must outlive the engine — strictly: the chase-prefix cache
  // holds live chases (each owning an NdvShard into `symbols`) until
  // ClearCaches() or destruction, so destroying the table first is
  // use-after-free, not just stale pointers. The chase creates NDVs in
  // `symbols`.
  ContainmentEngine(const Catalog* catalog, SymbolTable* symbols,
                    EngineConfig config = {});

  ContainmentEngine(const ContainmentEngine&) = delete;
  ContainmentEngine& operator=(const ContainmentEngine&) = delete;

  // Cancels every outstanding request (their futures resolve kCancelled),
  // then joins the executor after draining the queue: every future handed
  // out resolves before the engine dies, and teardown never hangs on a
  // dropped-future semi-decision with no deadline. Granularity caveat: a
  // request inside a single homomorphism/streaming search notices the
  // cancel only when that search returns (polls sit between chase steps
  // and deepening levels). Do not submit during destruction.
  ~ContainmentEngine();

  // --- Async decision API --------------------------------------------------

  // Submits one containment question for execution on the shared
  // work-stealing pool and returns immediately. The future resolves to the
  // verdict (plus certificate when requested); a deadline/cancellation trips
  // it to kDeadlineExceeded / kCancelled. The request's queries and Σ are
  // owned or shared by the request, so the caller's locals may go out of
  // scope freely; the engine keeps the request alive until it resolves.
  //
  // Do not block on a future from inside another request's execution (the
  // classic pool deadlock); Submit more work instead.
  EngineFuture<EngineOutcome> Submit(ContainmentRequest request);

  // Convenience fan-out: one future per request, in order.
  std::vector<EngineFuture<EngineOutcome>> SubmitAll(
      std::vector<ContainmentRequest> requests);

  // --- Synchronous decision API --------------------------------------------

  // Σ ⊨ Q ⊆∞ Q', dispatched per the Σ classification. Runs inline on the
  // calling thread (no executor hop).
  Result<EngineVerdict> Check(const ConjunctiveQuery& q,
                              const ConjunctiveQuery& q_prime,
                              const DependencySet& deps);

  // Σ ⊨ Q ≡∞ Q' (containment both ways, short-circuiting).
  Result<bool> CheckEquivalence(const ConjunctiveQuery& q,
                                const ConjunctiveQuery& q_prime,
                                const DependencySet& deps);

  // Legacy batch shim: with num_threads > 1, submits every task to the
  // executor and waits (identical verdicts to sequential evaluation); with
  // num_threads <= 1, evaluates inline sequentially. One Result per task,
  // in task order.
  std::vector<Result<EngineVerdict>> CheckMany(
      const std::vector<ContainmentTask>& tasks);

  // Legacy certificate shim: the synchronous counterpart of Submit with
  // want_certificate, running inline on the calling thread (like Check —
  // no pool spin-up for a blocking call). Decides containment and, when it
  // holds, returns the Theorem 2 proof object extracted from the
  // decision's own chase (a single chase serves both — and a cached chase
  // prefix may mean no new chase at all).
  Result<std::optional<ContainmentCertificate>> Certify(
      const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
      const DependencySet& deps);

  // --- Optimization API (core/minimize.h semantics) ------------------------

  // Greedy Σ-minimization. The O(n²) near-identical containment checks this
  // issues are exactly what the memoization layer absorbs.
  Result<MinimizeReport> Minimize(const ConjunctiveQuery& q,
                                  const DependencySet& deps);

  Result<bool> IsNonMinimal(const ConjunctiveQuery& q,
                            const DependencySet& deps);

  // Pass-1 FD unification for the optimizer: Q replaced by its finite
  // FD-only chase. Returns the chased query (marked empty on constant
  // clash) plus the number of distinct variables eliminated.
  struct FdUnifyResult {
    ConjunctiveQuery query;
    size_t variables_unified = 0;
    bool proved_empty = false;
  };
  Result<FdUnifyResult> FdUnify(const ConjunctiveQuery& q,
                                const DependencySet& deps);

  // --- Finite containment (Section 4 / Theorem 3 tools) --------------------

  Result<std::optional<Instance>> ExhaustiveCounterexample(
      const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
      const DependencySet& deps, const ExhaustiveSearchParams& params = {});

  Result<std::optional<Instance>> RandomCounterexample(
      const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
      const DependencySet& deps, const RandomSearchParams& params = {});

  Result<std::optional<Instance>> FiniteCounterexample(
      const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
      const DependencySet& deps, const FiniteWitnessParams& params = {});

  // --- Introspection -------------------------------------------------------

  // The Σ analysis the dispatcher would use (cached per canonical Σ key).
  SigmaAnalysis Analyze(const DependencySet& deps);

  // The strategy the dispatcher selects a priori for this (Q', Σ) shape, or
  // nullopt when Σ is general and semi-decision is off. Check can still end
  // up on kIterativeDeepening instead of the reported kStreamingFrontier in
  // two cases it resolves per-call: an empty-marked Q, and a streaming run
  // that exhausts its frontier budget and falls back.
  std::optional<DecisionStrategy> RouteOf(const ConjunctiveQuery& q_prime,
                                          const DependencySet& deps);

  EngineStats stats() const;

  // Current entry counts of the three caches (gauges, not counters) —
  // introspection for capacity/eviction tests and ops dashboards.
  // verdict_entries reads the first LRU tier of the stack.
  struct CacheSizes {
    size_t verdict_entries = 0;
    size_t sigma_entries = 0;
    size_t chase_entries = 0;
  };
  CacheSizes cache_sizes() const;

  const EngineConfig& config() const { return config_; }

  // --- tier-stack introspection ---
  // Per-tier hit/publish counters (one row per active tier, probe order)
  // and the assembly outcome of every configured tier — a quarantined tier
  // shows up here inactive with its reason, never silently absent.
  std::vector<VerdictTierStats> tier_stats() const;
  std::vector<TierStack::TierDescriptor> tier_descriptors() const;

  // Back-compat accessors for the store_path era: the first local-store
  // tier's VerdictStore, or nullptr when the stack has none — because none
  // was configured, or because its open failed / it was quarantined
  // (store_status() then says why; the engine still serves — a broken
  // cache tier degrades to a cold one, it never takes the service down
  // with it).
  const VerdictStore* store() const;
  const Status& store_status() const { return store_status_; }

  // Drops volatile cache state only (the LRU tiers, a remote tier's
  // negative entries, Σ/chase caches); durable tiers keep their entries
  // (their contents are valid forever by construction — see
  // engine/store.h).
  void ClearCaches();

  // Migrates every verdict tier from `old_deps` to `new_deps` in one pass:
  // computes the per-dependency delta, drops the Σ-analysis and chase-prefix
  // caches (their entries embed the old Σ), and drives the delta through
  // the tier stack — surviving entries are re-keyed in place (exact or
  // monotone per engine/lineage.h), touched entries are dropped, the local
  // store compacts, and a v3 remote peer migrates its authority map too.
  // O(entries touched) work instead of the O(everything) cold start that
  // re-keying the whole cache used to mean. Call between decision bursts:
  // concurrent in-flight checks under the *old* Σ may race the migration
  // and simply publish old-keyed (unreachable, never wrong) entries.
  DeltaReceipt EvolveSigma(const DependencySet& old_deps,
                           const DependencySet& new_deps);

 private:
  // A shared, resumable chase prefix. The engine hands out shared_ptrs: the
  // LRU map holds one reference and every in-flight asker holds another, so
  // eviction under load never destroys a chase mid-use — the last asker
  // does. `mu` serializes extension (a Chase is not internally thread-safe);
  // concurrent askers of the same exact (Q, Σ, variant) queue here and each
  // resumes the single shared prefix where the previous one left it. The
  // entry owns a stable copy of Σ so the Chase's internal pointer outlives
  // any caller's DependencySet. Each asker attaches its own ChaseControl for
  // its turn and detaches before unlocking, so one asker's deadline or
  // cancellation never aborts another's.
  struct SharedChase {
    std::mutex mu;  // guards everything below
    bool built = false;
    Status init_status;
    std::unique_ptr<DependencySet> deps;
    std::unique_ptr<Chase> chase;
  };

  // Per-execution context threaded through the decision path: the request's
  // policy, the cooperative control (null for uncontrolled synchronous
  // calls), the certificate out-slot (null unless want_certificate), and
  // whether the chase prefix may be cached (`false` for Minimize /
  // IsNonMinimal one-shot probes whose exact keys never repeat — they still
  // use the verdict cache but would otherwise pin dead chases).
  // Used-dependency lineage harvested from a decision's own chase, filled by
  // DecideByChase when the ExecContext asks (cacheable tasks only — this is
  // what ToStoredVerdict persists so a schema delta can later prove the
  // entry untouched). Chase-free strategies leave known = false: their
  // verdicts survive deltas monotonically, never exactly.
  struct LineageCapture {
    bool known = false;
    std::vector<uint64_t> used_fps;  // sorted per-dependency fingerprints
  };

  struct ExecContext {
    const RequestOptions* options = nullptr;  // never null
    ChaseControl* control = nullptr;
    std::optional<ContainmentCertificate>* cert_out = nullptr;
    LineageCapture* lineage = nullptr;
    bool cache_chase_prefix = true;
  };

  // The one decision path everything funnels into: validate, classify,
  // consult the verdict cache (unless a certificate is wanted — a cached
  // verdict has no derivation to extract), decide, extract the certificate,
  // fill the cache.
  Result<EngineOutcome> Execute(const ConjunctiveQuery& q,
                                const ConjunctiveQuery& q_prime,
                                const DependencySet& deps,
                                const RequestOptions& options,
                                ChaseControl* control,
                                bool cache_chase_prefix);

  // Uncached dispatch: classify, route, execute.
  Result<EngineVerdict> DecideUncached(const ConjunctiveQuery& q,
                                       const ConjunctiveQuery& q_prime,
                                       const DependencySet& deps,
                                       const SigmaAnalysis& analysis,
                                       const ExecContext& ctx);

  // The Theorem 1/2 iterative-deepening decision loop, run on a fresh,
  // shared-from-cache, or local chase of Q. Polls ctx.control between
  // levels (and the chase polls it between steps); extracts ctx.cert_out
  // from the live chase on a contained verdict.
  Result<ContainmentReport> DecideByChase(const ConjunctiveQuery& q,
                                          const ConjunctiveQuery& q_prime,
                                          const DependencySet& deps,
                                          const SigmaAnalysis& analysis,
                                          const ExecContext& ctx);

  // Check()'s body, minus the public-entry stats increment.
  Result<EngineVerdict> CheckCounted(const ConjunctiveQuery& q,
                                     const ConjunctiveQuery& q_prime,
                                     const DependencySet& deps,
                                     bool cache_chase_prefix);

  // Write-behind: schedules one tier-stack flush on the executor unless one
  // is already queued. The decision path buffers into the tiers' in-memory
  // pending state and returns; the disk/network write happens on a pool
  // worker.
  void ScheduleTierFlush();

  // The canonical tier key for a task this engine may serve from its tiers,
  // or "" when the task is not cacheable here (foreign catalog or symbol
  // table — the same conditions Execute applies before probing).
  std::string TierKeyForPrefetch(const ConjunctiveQuery& q,
                                 const ConjunctiveQuery& q_prime,
                                 const DependencySet& deps) const;

  // Batched tier warm-up for a CheckMany/SubmitAll burst: one
  // TierStack::Prefetch over the burst's keys, so a network tier pays one
  // kTierOpFetchMany round trip instead of one RTT per key. Schedules the
  // write-behind flush when promotions buffered durable bytes.
  void PrefetchTierKeys(const std::vector<std::string>& keys);

  const Catalog* catalog_;
  SymbolTable* symbols_;
  EngineConfig config_;

  // Monotone counters are atomics so the chase hot path never takes mu_ for
  // bookkeeping; stats() assembles a relaxed snapshot.
  struct AtomicStats {
    std::atomic<uint64_t> checks{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> cache_misses{0};
    std::atomic<uint64_t> chase_prefix_reuses{0};
    std::atomic<uint64_t> chases_built{0};
    // store/remote hit+write counts live in the tiers themselves
    // (tier_stats()); stats() derives the EngineStats rollups from there.
    std::atomic<uint64_t> entries_retagged{0};
    std::atomic<uint64_t> entries_dropped{0};
    std::atomic<uint64_t> monotone_hits{0};
    std::atomic<uint64_t> submits{0};
    std::atomic<uint64_t> deadline_expirations{0};
    std::atomic<uint64_t> cancellations{0};
    std::atomic<uint64_t> certificates_built{0};
    std::atomic<uint64_t> chase_steps{0};
    std::atomic<uint64_t> chase_index_rebuilds{0};
    std::atomic<uint64_t> segments_built{0};
    std::atomic<uint64_t> bulk_ind_applications{0};
    std::atomic<uint64_t> inds_pruned{0};
    std::atomic<uint64_t> parallel_batches{0};
    std::atomic<uint64_t> parallel_serialized_levels{0};
    std::array<std::atomic<uint64_t>, kNumStrategies> by_strategy{};
  };
  AtomicStats stats_;

  mutable std::mutex mu_;  // guards the two caches below (the verdict tiers
                           // synchronize themselves)
  LruCache<SigmaAnalysis> sigma_cache_;
  LruCache<std::shared_ptr<SharedChase>> chase_cache_;

  // Outstanding request states, so destruction can cancel them all — the
  // futures may have been dropped, and without this a no-deadline
  // semi-decision would stall the destructor's drain forever. Weak: a
  // resolved request's state dies with its task + futures; Submit prunes
  // expired entries as it registers new ones.
  std::mutex inflight_mu_;
  std::vector<std::weak_ptr<internal::FutureState<EngineOutcome>>> inflight_;

  // The verdict tier stack. Declared above executor_ deliberately: the
  // executor is destroyed first and drains any queued write-behind flush
  // task while the tiers are still alive; each tier's own destructor then
  // does its final flush (+ compaction for the local store).
  std::unique_ptr<TierStack> tiers_;
  Status store_status_;  // why the stack (or its store tier) is degraded
  std::atomic<bool> tier_flush_scheduled_{false};

  // Runner handed to kParallel chases (ChaseLimits::runner): forks a
  // chase's witness-class sweeps back into executor_ as a helping-join
  // TaskGroup. Constructed unbound (executor_ is deliberately the last
  // member); the constructor body rebinds it — storing the pointer is safe
  // before executor_ is constructed, using it is not, and no chase runs
  // until construction completes.
  ExecutorTaskRunner chase_runner_{nullptr};

  // Last member: destroyed first, so queued tasks drain while the caches,
  // stats, store and symbol table above are still alive.
  Executor executor_;
};

}  // namespace cqchase

#endif  // CQCHASE_ENGINE_ENGINE_H_
