#include "engine/tier.h"

#include <unordered_set>
#include <utility>

#include "base/string_util.h"
#include "engine/remote_tier.h"

namespace cqchase {

// --- LruTier -----------------------------------------------------------------

std::optional<StoredVerdict> LruTier::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  ++lookups_;
  if (StoredVerdict* hit = cache_.Get(key)) {
    ++hits_;
    return *hit;
  }
  return std::nullopt;
}

bool LruTier::Publish(const std::string& key, const StoredVerdict& verdict) {
  std::lock_guard<std::mutex> lock(mu_);
  if (cache_.capacity() == 0) return false;  // knob-off tier accepts nothing
  // The interface contract counts *new* entries only (an overwrite of a
  // resident key is a re-statement: refresh recency, report nothing), so
  // per-tier publish counters mean the same thing across backends.
  const bool is_new = cache_.Get(key) == nullptr;
  cache_.Put(key, verdict);
  if (is_new) ++publishes_;
  return is_new;
}

VerdictTierStats LruTier::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  VerdictTierStats s;
  s.name = "lru";
  s.entries = cache_.size();
  s.lookups = lookups_;
  s.hits = hits_;
  s.publishes = publishes_;
  return s;
}

DeltaReceipt LruTier::ApplyDelta(const LineageDelta& ld) {
  DeltaReceipt receipt;
  if (ld.empty()) return receipt;
  std::lock_guard<std::mutex> lock(mu_);
  // Drain, retag, and re-insert survivors back-to-front: Put makes each key
  // most-recent, so walking the drained list from its LRU end reconstructs
  // the original recency order exactly — a migration must not reshuffle
  // which entries the next eviction picks.
  auto drained = cache_.Drain();
  for (auto it = drained.rbegin(); it != drained.rend(); ++it) {
    auto& [key, verdict] = *it;
    std::string rekeyed;
    const RetagDecision decision = ApplyVerdictDelta(ld, key, verdict, &rekeyed);
    receipt.Count(decision);
    switch (decision) {
      case RetagDecision::kUntouched:
        cache_.Put(key, std::move(verdict));
        break;
      case RetagDecision::kKeepExact:
      case RetagDecision::kKeepMonotone:
        // A survivor never displaces an entry already re-inserted at its
        // rekeyed slot — that can only be a direct new-Σ incumbent, which
        // is at least as precise. (The reverse order is handled by Put's
        // overwrite: an untouched incumbent drained *after* the survivor
        // replaces it.)
        if (!cache_.Contains(rekeyed)) cache_.Put(rekeyed, std::move(verdict));
        break;
      case RetagDecision::kDrop:
        break;
    }
  }
  return receipt;
}

void LruTier::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.Clear();
}

// --- LocalStoreTier ----------------------------------------------------------

LocalStoreTier::LocalStoreTier(std::unique_ptr<VerdictStore> store)
    : store_(std::move(store)), name_(StrCat("store:", store_->dir())) {}

std::optional<StoredVerdict> LocalStoreTier::Lookup(const std::string& key) {
  std::optional<StoredVerdict> hit = store_->Lookup(key);
  std::lock_guard<std::mutex> lock(mu_);
  ++lookups_;
  if (hit.has_value()) ++hits_;
  return hit;
}

bool LocalStoreTier::Publish(const std::string& key,
                             const StoredVerdict& verdict) {
  // Insert-if-absent: a verdict is a pure function of its key, so a repeat
  // publish (a promotion from a remote hit, a certificate re-decide) must
  // not append a duplicate log frame.
  if (!store_->PutIfAbsent(key, verdict)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  ++publishes_;
  return true;
}

Status LocalStoreTier::Flush() {
  const bool had_pending = store_->has_pending();
  Status status = store_->Flush();
  std::lock_guard<std::mutex> lock(mu_);
  if (!status.ok()) {
    ++flush_failures_;
  } else if (had_pending) {
    ++flushes_;
  }
  return status;
}

VerdictTierStats LocalStoreTier::Stats() const {
  const VerdictStoreStats store_stats = store_->stats();
  std::lock_guard<std::mutex> lock(mu_);
  VerdictTierStats s;
  s.name = name_;
  s.entries = store_stats.entries;
  s.lookups = lookups_;
  s.hits = hits_;
  s.publishes = publishes_;
  s.flushes = flushes_;
  s.flush_failures = flush_failures_;
  return s;
}

// --- TierStack ---------------------------------------------------------------

namespace {

// Builds the backend a spec describes; any error flows through the spec's
// mismatch policy at the Assemble call site.
Result<std::unique_ptr<VerdictTier>> BuildTier(const TierSpec& spec) {
  switch (spec.kind) {
    case TierSpec::Kind::kLru:
      return std::unique_ptr<VerdictTier>(
          std::make_unique<LruTier>(spec.capacity));
    case TierSpec::Kind::kLocalStore: {
      if (spec.path.empty()) {
        return Status::InvalidArgument("local-store tier has an empty path");
      }
      VerdictStoreOptions options;
      options.max_entries = spec.store_max_entries;
      CQCHASE_ASSIGN_OR_RETURN(std::unique_ptr<VerdictStore> store,
                               VerdictStore::Open(spec.path, options));
      return std::unique_ptr<VerdictTier>(
          std::make_unique<LocalStoreTier>(std::move(store)));
    }
    case TierSpec::Kind::kRemote: {
      if (spec.transport == nullptr) {
        return Status::InvalidArgument("remote tier has a null transport");
      }
      RemoteTierOptions options;
      options.negative_ttl = spec.remote_negative_ttl;
      CQCHASE_ASSIGN_OR_RETURN(
          std::unique_ptr<RemoteTier> tier,
          RemoteTier::Connect(spec.transport, options));
      return std::unique_ptr<VerdictTier>(std::move(tier));
    }
  }
  return Status::InvalidArgument("unknown tier kind");
}

std::string SpecName(const TierSpec& spec) {
  switch (spec.kind) {
    case TierSpec::Kind::kLru:
      return "lru";
    case TierSpec::Kind::kLocalStore:
      return StrCat("store:", spec.path);
    case TierSpec::Kind::kRemote:
      return spec.transport == nullptr
                 ? std::string("remote:<null>")
                 : StrCat("remote:", std::string(spec.transport->Peer()));
  }
  return "unknown";
}

}  // namespace

Result<std::unique_ptr<TierStack>> TierStack::Assemble(
    const std::vector<TierSpec>& specs) {
  std::unique_ptr<TierStack> stack(new TierStack());
  stack->specs_ = specs;
  stack->descriptors_.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const TierSpec& spec = specs[i];
    TierDescriptor desc;
    desc.kind = spec.kind;
    desc.name = SpecName(spec);

    Result<std::unique_ptr<VerdictTier>> built = BuildTier(spec);
    Status problem = built.ok() ? Status::OK() : built.status();
    if (problem.ok()) {
      // The handshake proper: a tier whose fingerprint disagrees with this
      // build speaks a different canonical-key scheme or entry layout, and
      // serving it would let keys of *different* tasks collide. Refuse or
      // quarantine — never serve.
      const uint64_t theirs = (*built)->Fingerprint();
      const uint64_t ours = StoreSchemaFingerprint();
      if (theirs != ours) {
        problem = Status::FailedPrecondition(StrCat(
            "tier ", desc.name, " schema fingerprint ", theirs,
            " does not match this build's ", ours,
            " (canonical-key scheme or verdict layout drift); tier disabled"));
      }
    }
    if (!problem.ok()) {
      if (spec.on_mismatch == TierSpec::MismatchPolicy::kRefuse) {
        return Status::FailedPrecondition(
            StrCat("tier stack assembly refused at tier ", i, " (",
                   desc.name, "): ", problem.message()));
      }
      desc.active = false;
      desc.status = problem;
      stack->descriptors_.push_back(std::move(desc));
      continue;
    }
    desc.active = true;
    stack->actives_.emplace_back(*std::move(built), stack->descriptors_.size());
    stack->descriptors_.push_back(std::move(desc));
  }
  return stack;
}

std::optional<TierStack::LookupResult> TierStack::Lookup(
    const std::string& key) {
  for (size_t a = 0; a < actives_.size(); ++a) {
    const size_t di = actives_[a].second;
    if (!specs_[di].read_through) continue;
    std::optional<StoredVerdict> hit = actives_[a].first->Lookup(key);
    if (!hit.has_value()) continue;

    LookupResult result;
    result.verdict = *hit;
    result.tier_index = di;
    result.kind = specs_[di].kind;
    // Promote into every cheaper write-through tier so the next asker stops
    // earlier. Durable tiers buffer the promotion; the caller schedules the
    // write-behind flush when we report buffered bytes.
    for (size_t b = 0; b < a; ++b) {
      const size_t bdi = actives_[b].second;
      if (!specs_[bdi].write_through) continue;
      if (actives_[b].first->Publish(key, *hit) &&
          actives_[b].first->HasPendingWrites()) {
        result.buffered_writes = true;
      }
    }
    return result;
  }
  return std::nullopt;
}

TierStack::PrefetchReceipt TierStack::Prefetch(
    const std::vector<std::string>& keys) {
  PrefetchReceipt receipt;
  // Deduplicate while preserving first-seen order: a CheckMany burst of
  // isomorphic tasks collapses onto few canonical keys, and the authority
  // should be asked each one once.
  std::vector<std::string> remaining;
  remaining.reserve(keys.size());
  {
    std::unordered_set<std::string> seen;
    seen.reserve(keys.size());
    for (const auto& key : keys) {
      if (seen.insert(key).second) remaining.push_back(key);
    }
  }
  receipt.keys = remaining.size();

  for (size_t a = 0; a < actives_.size() && !remaining.empty(); ++a) {
    const size_t di = actives_[a].second;
    if (!specs_[di].read_through) continue;
    std::vector<std::optional<StoredVerdict>> answers =
        actives_[a].first->LookupMany(remaining);
    std::vector<std::string> still_cold;
    for (size_t i = 0; i < remaining.size(); ++i) {
      if (i >= answers.size() || !answers[i].has_value()) {
        still_cold.push_back(std::move(remaining[i]));
        continue;
      }
      ++receipt.resolved;
      // Same promotion as Lookup's: the hit lands in every cheaper
      // write-through tier, so the burst's actual Lookups stop at the LRU.
      for (size_t b = 0; b < a; ++b) {
        const size_t bdi = actives_[b].second;
        if (!specs_[bdi].write_through) continue;
        if (actives_[b].first->Publish(remaining[i], *answers[i]) &&
            actives_[b].first->HasPendingWrites()) {
          receipt.buffered_writes = true;
        }
      }
    }
    remaining = std::move(still_cold);
  }
  return receipt;
}

TierStack::PublishReceipt TierStack::Publish(const std::string& key,
                                             const StoredVerdict& verdict) {
  PublishReceipt receipt;
  for (auto& [tier, di] : actives_) {
    if (!specs_[di].write_through) continue;
    if (tier->Publish(key, verdict)) {
      ++receipt.accepted;
      if (tier->HasPendingWrites()) receipt.buffered_writes = true;
    }
  }
  return receipt;
}

DeltaReceipt TierStack::ApplyDelta(const LineageDelta& ld) {
  DeltaReceipt total;
  if (ld.empty()) return total;
  // Every active tier, not just read-through ones: a write-only tier holds
  // (and republishes) entries too, and leaving them old-keyed would strand
  // them forever rather than migrate them.
  for (auto& [tier, di] : actives_) {
    (void)di;
    total.Add(tier->ApplyDelta(ld));
  }
  return total;
}

Status TierStack::Flush() {
  Status first_failure;
  for (auto& [tier, di] : actives_) {
    (void)di;
    Status s = tier->Flush();
    if (!s.ok() && first_failure.ok()) first_failure = s;
  }
  return first_failure;
}

void TierStack::Clear() {
  for (auto& [tier, di] : actives_) {
    (void)di;
    tier->Clear();
  }
}

std::vector<VerdictTierStats> TierStack::Stats() const {
  std::vector<VerdictTierStats> out;
  out.reserve(actives_.size());
  for (const auto& [tier, di] : actives_) {
    (void)di;
    out.push_back(tier->Stats());
  }
  return out;
}

VerdictStore* TierStack::local_store() const {
  for (const auto& [tier, di] : actives_) {
    if (specs_[di].kind == TierSpec::Kind::kLocalStore) {
      return static_cast<LocalStoreTier*>(tier.get())->store();
    }
  }
  return nullptr;
}

size_t TierStack::lru_entries() const {
  for (const auto& [tier, di] : actives_) {
    if (specs_[di].kind == TierSpec::Kind::kLru) return tier->Stats().entries;
  }
  return 0;
}

bool TierStack::HasPendingWrites() const {
  for (const auto& [tier, di] : actives_) {
    (void)di;
    if (tier->HasPendingWrites()) return true;
  }
  return false;
}

}  // namespace cqchase
