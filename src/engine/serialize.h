// Wire format of the persistent verdict store: little-endian fixed-width
// primitives, length-prefixed strings, FNV-1a-checksummed framing, and the
// (canonical key → StoredVerdict) entry codec shared by the snapshot file
// and the write-behind append log.
//
// Trust model: everything read back from disk is treated as hostile input —
// every decode is bounds-checked, every frame is checksummed, and every enum
// is range-validated before it is cast. A verdict store is only a cache, so
// the correct response to any undecodable byte is "recompute", never "trust".
//
// Versioning has two layers:
//   * kStoreFormatVersion — the byte layout of the files themselves. Bump it
//     whenever the encoding below changes shape.
//   * StoreSchemaFingerprint() — a hash over the layout descriptor AND the
//     canonical-key scheme version (engine/canonical.h). Verdicts are keyed
//     by canonical task keys; if the canonicalizer's output format ever
//     changes, old keys could collide with new ones for *different* tasks,
//     so a fingerprint mismatch invalidates the whole store (it is
//     quarantined and rebuilt, see engine/store.h).
#ifndef CQCHASE_ENGINE_SERIALIZE_H_
#define CQCHASE_ENGINE_SERIALIZE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace cqchase {

namespace wire {

// --- primitives (little-endian, fixed width) ---------------------------------

inline void PutU8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

// u32 byte length + raw bytes.
inline void PutString(std::string& out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

// Bounds-checked sequential reader over an in-memory byte buffer. Every
// Read* returns false (and leaves the output untouched) once the buffer is
// exhausted or a length prefix points past the end; `ok()` stays false from
// the first failed read on.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  bool ReadU8(uint8_t* v);
  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadString(std::string* v);
  // Raw view of the next `n` bytes, advancing past them.
  bool ReadBytes(size_t n, std::string_view* v);

  bool ok() const { return ok_; }
  size_t position() const { return pos_; }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// FNV-1a over `bytes` (64-bit offset basis / prime). Not cryptographic —
// it guards against torn writes and bit rot, not adversaries with write
// access to the store directory.
uint64_t Fnv1a64(std::string_view bytes);

// --- checksummed framing -----------------------------------------------------

// Appends one framed record: u32 payload size, u64 FNV-1a(payload), payload.
// The frame is the unit of torn-write recovery in the append log: a crash
// mid-append leaves a frame that fails its length or checksum test, and the
// reader salvages everything before it.
void PutFramed(std::string& out, std::string_view payload);

// Reads one framed record into `payload`. kInvalidArgument on a truncated
// frame or a checksum mismatch; the reader position is then unspecified and
// the caller must stop consuming.
Status ReadFramed(ByteReader& reader, std::string* payload);

}  // namespace wire

// --- verdict entries ---------------------------------------------------------

// Current byte-layout version of the snapshot and log files. History:
//   1 — key + verdict fields + certificate metadata
//   2 — Σ-lineage: confidence / lineage_known / sigma_fp / used-dependency
//       fingerprint list, appended after the v1 fields. v1 files stay
//       readable (entries decode as lineage-unknown, see DecodeVerdictEntry).
inline constexpr uint32_t kStoreFormatVersion = 2;

// File magics ("CQVS" / "CQVL" little-endian).
inline constexpr uint32_t kSnapshotMagic = 0x53565143u;
inline constexpr uint32_t kLogMagic = 0x4C565143u;

// Hash of the entry layout descriptor + the canonical-key scheme version;
// see the header comment for why key-scheme drift must invalidate the store.
// StoreSchemaFingerprint() is the current build's; the For variant answers
// for any version this build can still *read* (0 for versions it cannot), so
// the store accepts its own older files instead of quarantining them.
uint64_t StoreSchemaFingerprint();
uint64_t StoreSchemaFingerprintFor(uint32_t version);

// How far a cached verdict's claim extends after schema evolution re-tagged
// it (engine/lineage.h owns the re-tagging rules).
enum class VerdictConfidence : uint8_t {
  // The verdict is exact for the Σ its key names: either it was decided
  // under that Σ, or every dependency the deciding chase used survived the
  // edit unchanged (the chase replays identically, so the verdict bit is
  // the one a fresh decision would produce).
  kExact = 0,
  // One direction is guaranteed by chase monotonicity — a contained entry
  // survived Σ additions (the chase only grew), a not-contained entry
  // survived removals (the counterexample still satisfies the subset). The
  // stored `contained` bit is correct under the *current* Σ; the metadata
  // around it (levels, bounds) describes the original decision.
  kMonotoneBound = 1,
};

// One persisted verdict: the cacheable subset of an EngineOutcome — the
// ContainmentReport minus its witness homomorphism (which references live
// chase facts and cannot survive the process), the Σ class and strategy that
// produced it, optional certificate metadata, and (v2) the Σ-lineage that
// lets the verdict survive a schema edit. The certificate metadata records
// that the producing computation also extracted a Theorem 2 certificate and
// how deep its derivation ran; the certificate itself is not persisted (a
// store hit can never serve one — certificate requests bypass caches by
// design).
struct StoredVerdict {
  bool contained = false;
  uint8_t chase_outcome = 0;  // ChaseOutcome
  uint8_t sigma_class = 0;    // SigmaClass
  uint8_t strategy = 0;       // DecisionStrategy
  uint32_t witness_max_level = 0;
  uint32_t chase_levels = 0;
  uint64_t level_bound = 0;
  uint64_t chase_conjuncts = 0;
  // Certificate metadata (telemetry, not a servable proof).
  bool certified = false;
  uint32_t certificate_depth = 0;
  // --- Σ-lineage (v2) ---
  uint8_t confidence = 0;  // VerdictConfidence
  // True when used_fps is a sound over-approximation of the dependencies the
  // deciding chase fired (engine/lineage.h). False for v1 legacy entries,
  // non-chase strategies, and monotone survivors of a previous delta (their
  // used-set described the pre-edit Σ) — such entries are "touched" under
  // any removal of a dependency and can only survive monotonically.
  bool lineage_known = false;
  // SigmaFingerprint (analysis/delta.h) of the Σ the entry's key names.
  uint64_t sigma_fp = 0;
  // Per-dependency fingerprints of the used dependencies, sorted ascending.
  // Fingerprints, not node indices: self-describing across processes and
  // invariant under the delta itself (re-tagging never remaps them).
  std::vector<uint64_t> used_fps;
};

// Appends the unframed (key, verdict) entry encoding to `out` (always the
// current kStoreFormatVersion layout).
void EncodeVerdictEntry(const std::string& key, const StoredVerdict& verdict,
                        std::string& out);

// Decodes one entry written under `version` (a version Open accepted, i.e.
// one StoreSchemaFingerprintFor knows). kInvalidArgument on truncation or an
// out-of-range enum value (the persisted byte must name a ChaseOutcome /
// SigmaClass / DecisionStrategy / VerdictConfidence this build knows, or the
// entry is untrusted). A v1 entry decodes with the lineage fields at their
// lineage-unknown defaults — treated as touched by any delta, never
// mis-kept.
Status DecodeVerdictEntry(wire::ByteReader& reader, std::string* key,
                          StoredVerdict* verdict,
                          uint32_t version = kStoreFormatVersion);

}  // namespace cqchase

#endif  // CQCHASE_ENGINE_SERIALIZE_H_
