// VerdictStore: the engine's persistent verdict tier — a durable map from
// isomorphism-invariant canonical task keys to containment verdicts.
//
// Johnson–Klug verdicts are pure functions of (canonical query pair, Σ,
// chase variant), all of which are folded into the key, so persisting them
// is sound by construction: a stored entry can never go stale because the
// answer it memoizes can never change. The only way a store becomes invalid
// is a *format* change — the byte layout or the canonical-key scheme — and
// both are guarded by the version + schema fingerprint in every file header
// (engine/serialize.h). Files written by any still-supported older format
// version are readable (their entries decode with that version's layout and
// conservative defaults for fields it lacked — e.g. v1 entries surface as
// lineage-unknown); a file that fails the guards for its own version, or
// any checksum, is quarantined (renamed aside) and the store rebuilds from
// empty: a cache must recompute rather than trust a byte it cannot verify.
//
// On-disk layout, two files in the store directory:
//
//   snapshot.cqvs — the compacted state: one header (magic, version,
//     fingerprint, entry count, payload size, payload checksum) + all
//     entries as one checksummed payload. Written atomically (temp file +
//     rename) by Compact(), which runs on close.
//   log.cqvl — the write-behind append log: a header frame, then one
//     checksummed frame per entry appended since the last compaction. A
//     crash mid-append leaves a torn tail; Open() salvages every whole
//     frame before it and truncates the rest. Opening state is
//     snapshot ∪ log (log wins on duplicate keys — it is newer).
//
// Concurrency: Lookup/Put take the map mutex only (writes go to the map and
// a pending buffer immediately — a Put is visible to Lookup before it is
// durable); Flush/Compact serialize file I/O under a separate mutex so the
// write-behind flush never blocks readers. The ContainmentEngine runs Flush
// off the hot path on its executor.
//
// The full store is memory-resident (entries are ~100 bytes: a canonical
// key + fixed fields), which is what makes Lookup a mutex-and-hash-probe
// instead of disk I/O; the pending buffer is bounded (oldest entries shed
// their durability claim under sustained flush failure, see
// records_dropped), and the map itself takes an optional
// VerdictStoreOptions::max_entries bound — past it, new keys are refused
// (records_capped) rather than grown into an OOM. Spilling / mmap'd
// snapshot serving for billion-entry stores stays future work (ROADMAP).
#ifndef CQCHASE_ENGINE_STORE_H_
#define CQCHASE_ENGINE_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/status.h"
#include "engine/lineage.h"
#include "engine/serialize.h"

namespace cqchase {

struct VerdictStoreOptions {
  // Compact (snapshot rewrite + log truncation) on destruction. Disable for
  // crash-shaped tests and read-mostly consumers that should not pay the
  // rewrite; pending appends are still flushed to the log either way.
  bool compact_on_close = true;

  // Capacity knob for the memory-resident map: once it holds this many
  // entries, further Puts of *new* keys are refused (counted in
  // records_capped) instead of growing without bound — the single-node
  // answer to "memory-resident in full" (ROADMAP). Overwrites of existing
  // keys always land. Open-time restore is exempt: entries already durable
  // are never dropped for a cap that shrank after they were written. 0 =
  // unbounded (the historical behavior).
  uint64_t max_entries = 0;
};

// Monotone counters plus the `entries` gauge; read via stats().
struct VerdictStoreStats {
  uint64_t entries = 0;                  // in-memory map size (gauge)
  uint64_t snapshot_entries_loaded = 0;  // restored from snapshot at Open
  uint64_t log_entries_replayed = 0;     // replayed from the append log
  uint64_t appends = 0;                  // Put() calls accepted
  uint64_t flushes = 0;                  // Flush() calls that wrote records
  uint64_t records_flushed = 0;          // entries made durable in the log
  uint64_t compactions = 0;
  uint64_t quarantined_files = 0;        // files renamed aside as untrusted
  uint64_t torn_tail_bytes_dropped = 0;  // log bytes discarded at Open
  uint64_t write_errors = 0;             // failed Flush/Compact attempts
  uint64_t records_dropped = 0;          // pending entries shed under the
                                         // backpressure cap (still served
                                         // from memory, not durable)
  uint64_t max_entries = 0;              // configured map bound (0 = none)
  uint64_t records_capped = 0;           // Puts refused at the max_entries
                                         // bound (recomputed next time, not
                                         // stored)
};

class VerdictStore {
 public:
  // Opens (creating the directory if needed) and restores snapshot + log.
  // Corrupt, truncated or version/fingerprint-mismatched files are
  // quarantined — renamed to "<file>.quarantine" — and the store opens
  // empty in their place; only genuine filesystem errors (unmkdirable
  // directory, unreadable-but-present file) fail the Open.
  //
  // A store directory has exactly one owner at a time: Open takes an
  // exclusive flock on "<dir>/LOCK" (released by the kernel even on crash)
  // and returns kFailedPrecondition while another VerdictStore — in this
  // process or any other — holds it. Without this, a second writer could
  // interleave log frames mid-append or compact the log out from under the
  // first, corrupting durable state.
  static Result<std::unique_ptr<VerdictStore>> Open(
      const std::string& dir, VerdictStoreOptions options = {});

  // Flushes pending appends; compacts when options say so.
  ~VerdictStore();

  VerdictStore(const VerdictStore&) = delete;
  VerdictStore& operator=(const VerdictStore&) = delete;

  // Thread-safe point lookup.
  std::optional<StoredVerdict> Lookup(const std::string& key) const;

  // Inserts or overwrites; visible to Lookup immediately, durable after the
  // next Flush. Thread-safe.
  void Put(const std::string& key, const StoredVerdict& verdict);

  // Inserts only when `key` is absent; returns whether it inserted. One
  // lock round-trip where a Lookup-then-Put would take two (and would race
  // another inserter between them). For callers that bypass cache reads —
  // certificate requests — and so cannot know whether the key is new.
  bool PutIfAbsent(const std::string& key, const StoredVerdict& verdict);

  // Appends every pending entry to the log as one batch of checksummed
  // frames. The write-behind half of the write path: the engine schedules
  // this on its executor so the decision path never waits on a disk.
  Status Flush();

  // Rewrites the snapshot from the full map (temp file + rename) and
  // truncates the log. Runs on close; callable any time.
  Status Compact();

  // Migrates every resident entry of the delta's old Σ to the new Σ:
  // survivors are retagged and re-keyed in place (engine/lineage.h decides
  // which survive and at what confidence), touched entries are dropped, and
  // the result is compacted so the on-disk state flips to the new Σ in one
  // atomic rename. Entries keyed under any other Σ are untouched. A failed
  // compaction is counted in write_errors and left for the next Flush /
  // Compact; the in-memory state is already migrated either way.
  DeltaReceipt ApplyDelta(const LineageDelta& ld);

  size_t size() const;
  bool has_pending() const;
  VerdictStoreStats stats() const;
  const std::string& dir() const { return dir_; }

  // Copies every resident entry (unordered). For bulk consumers that seed
  // another map from this store — the authority daemon loads its serving
  // state this way at startup — not for point queries (use Lookup).
  std::vector<std::pair<std::string, StoredVerdict>> Entries() const;

  // Paths of the two store files inside `dir` (exposed for tests and ops).
  std::string SnapshotPath() const;
  std::string LogPath() const;

 private:
  VerdictStore(std::string dir, VerdictStoreOptions options);

  // Load half of Open(); both quarantine instead of trusting bad bytes.
  Status LoadSnapshot();
  Status ReplayLog();
  // Renames `path` to "<path>.quarantine" (replacing any previous
  // quarantine) and counts it.
  void Quarantine(const std::string& path);

  const std::string dir_;
  const VerdictStoreOptions options_;

  mutable std::mutex mu_;  // map_, pending_, counters mutated under it
  std::unordered_map<std::string, StoredVerdict> map_;
  std::vector<std::pair<std::string, StoredVerdict>> pending_;
  VerdictStoreStats counters_;

  // File I/O only; never held while mu_ is (Flush/Compact take io_mu_ first,
  // then mu_ briefly to copy state out).
  std::mutex io_mu_;
  bool log_has_header_ = false;
  // An on-disk file carried an older (still-supported) format version; Open
  // compacts immediately so both files are rewritten at the current version
  // before any new entry could be appended behind an old header (a mixed
  // log would shed its new-format tail as torn on the next open).
  bool legacy_format_seen_ = false;
  int lock_fd_ = -1;  // exclusive flock on <dir>/LOCK for the store's life
  // Set once Open fully succeeded. The destructor's flush/compact only run
  // then: a store torn down on a failed Open must leave the on-disk state
  // exactly as it found it (compacting an empty map over a transiently
  // unreadable snapshot would *erase* every durable verdict).
  bool opened_ = false;
};

}  // namespace cqchase

#endif  // CQCHASE_ENGINE_STORE_H_
