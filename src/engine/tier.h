// VerdictTier: the engine's pluggable verdict-cache hierarchy.
//
// Johnson–Klug verdicts are pure functions of their canonical task key
// (engine/canonical.h folds Q, Q', Σ and the chase variant into it), so
// verdict caches can be stacked arbitrarily deep without soundness risk: a
// tier can only be *cold*, never *stale*. This header turns that property
// into a first-class seam — one probe interface, many storage engines behind
// it (the same move VLog makes with its pluggable column-store backends):
//
//   VerdictTier  — the interface every backend implements: Lookup / Publish
//                  / Flush / Stats, plus a Fingerprint() handshake.
//   TierSpec     — declarative description of one tier (kind, policy flags,
//                  backend knobs); EngineConfig carries a vector of these.
//   TierStack    — the assembled hierarchy. Probes tiers in order (cheapest
//                  first); a miss at tier N falls through to N+1; a hit at
//                  tier N is promoted into every cheaper tier, so hot keys
//                  migrate toward memory. Publishes fan out to every
//                  write-through tier; durable/remote tiers buffer and make
//                  the bytes move on Flush(), which the engine runs
//                  write-behind on its executor.
//
// Fingerprint handshake: verdicts are only exchangeable between parties that
// agree on the canonical-key scheme and the StoredVerdict layout — both are
// folded into StoreSchemaFingerprint() (engine/serialize.h). TierStack
// assembly checks every tier's Fingerprint() against this build's; a
// mismatched tier is *refused* (assembly fails loudly) or *quarantined*
// (tier disabled, reason recorded in its descriptor, the rest of the stack
// serves) per TierSpec::on_mismatch. A disabled tier is never silently
// served — a wrong key scheme would collide keys of *different* tasks.
//
// Ships with three backends: LruTier (the in-memory verdict LRU), a
// LocalStoreTier adapting the persistent VerdictStore (engine/store.h), and
// RemoteTier (engine/remote_tier.h) speaking a fetch/publish protocol over a
// transport. The recipe for a fourth backend is in README.md.
#ifndef CQCHASE_ENGINE_TIER_H_
#define CQCHASE_ENGINE_TIER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "engine/lru_cache.h"
#include "engine/serialize.h"
#include "engine/store.h"

namespace cqchase {

class VerdictTransport;  // engine/remote_tier.h

// Monotone per-tier counters plus the `entries` gauge; every backend fills
// the generic ones, RemoteTier additionally fills the negative-cache and
// transport rows. Surfaced per tier in EngineStats and bench JSON records.
struct VerdictTierStats {
  std::string name;                // e.g. "lru", "store:/path", "remote:peer"
  uint64_t entries = 0;            // resident entries (gauge)
  uint64_t lookups = 0;            // probes reaching this tier
  uint64_t hits = 0;
  uint64_t publishes = 0;          // publishes *accepted* (dedup/cap refusals
                                   // are not counted here)
  uint64_t flushes = 0;            // Flush() calls that moved records
  uint64_t flush_failures = 0;
  // RemoteTier only.
  uint64_t fetches = 0;            // transport round trips for Lookup(Many)
  uint64_t batched_fetches = 0;    // of those, kTierOpFetchMany round trips
  uint64_t batched_keys = 0;       // keys shipped inside batched round trips
  uint64_t negative_hits = 0;      // misses served by the local negative cache
  uint64_t negatives_expired = 0;  // negative entries aged out by their TTL
  uint64_t transport_errors = 0;
  uint64_t reconnects = 0;         // transport re-dials after a lost link
  uint64_t publishes_dropped = 0;  // pending entries shed at the buffer cap
};

// One layer of the verdict-cache hierarchy. Implementations must be
// thread-safe: the engine probes and publishes from every executor worker
// and flushes from a write-behind task concurrently.
class VerdictTier {
 public:
  virtual ~VerdictTier() = default;

  virtual std::string_view Name() const = 0;

  // Point probe. nullopt is a miss — including "backend unreachable": a tier
  // that cannot answer must degrade to cold, never guess.
  virtual std::optional<StoredVerdict> Lookup(const std::string& key) = 0;

  // Batch probe, results aligned with `keys`. The default is a per-key
  // Lookup loop — correct for every backend; RemoteTier overrides it to ship
  // one kTierOpFetchMany round trip per chunk instead of one RTT per key.
  virtual std::vector<std::optional<StoredVerdict>> LookupMany(
      const std::vector<std::string>& keys) {
    std::vector<std::optional<StoredVerdict>> out;
    out.reserve(keys.size());
    for (const auto& key : keys) out.push_back(Lookup(key));
    return out;
  }

  // Inserts `verdict` under `key`. Verdicts are pure functions of the key,
  // so an overwrite is always a no-op re-statement: backends may (and the
  // durable ones do) treat Publish as insert-if-absent to avoid duplicate
  // bytes. Must be cheap — durable/remote tiers buffer here and move bytes
  // in Flush(). Returns whether the tier accepted a *new* entry.
  virtual bool Publish(const std::string& key, const StoredVerdict& verdict) = 0;

  // Drains whatever Publish buffered (append log write, transport batch).
  // The engine schedules this on its executor so the decision path never
  // waits on I/O or a network.
  virtual Status Flush() = 0;

  virtual VerdictTierStats Stats() const = 0;

  // Schema handshake value, checked once at stack assembly against this
  // build's StoreSchemaFingerprint(). Local backends return it verbatim;
  // RemoteTier returns whatever its *peer* reported at connect.
  virtual uint64_t Fingerprint() const = 0;

  // Migrates every resident entry of the delta's old Σ per the survival
  // rules in engine/lineage.h: survivors are retagged and re-keyed, touched
  // entries are dropped. Entries under any other Σ are untouched. The
  // default is correct for a tier with no retaggable state. Backends that
  // cannot retag remotely (a peer speaking an older protocol) degrade to
  // dropping their view of the old Σ — stale entries merely become
  // unreachable under new-Σ keys, never wrong.
  virtual DeltaReceipt ApplyDelta(const LineageDelta& ld) {
    (void)ld;
    return {};
  }

  // Drops volatile state only (ClearCaches semantics): an LRU empties, a
  // remote tier forgets its negative entries; durable entries and pending
  // publishes survive.
  virtual void Clear() {}

  // True when Publish/promotion buffered bytes that a Flush() still needs to
  // move. The engine uses this to schedule exactly the flushes it needs.
  virtual bool HasPendingWrites() const { return false; }
};

// Declarative description of one tier; EngineConfig::tiers holds the stack
// cheapest-first. Use the factory helpers — they read as the probe order:
//   config.tiers = {TierSpec::Lru(1 << 16),
//                   TierSpec::LocalStore("/var/cq/verdicts"),
//                   TierSpec::Remote(transport)};
struct TierSpec {
  enum class Kind { kLru, kLocalStore, kRemote };

  // What stack assembly does with a tier whose Fingerprint() disagrees with
  // this build's, or whose backend fails to construct (store unopenable,
  // remote handshake failed).
  enum class MismatchPolicy {
    kQuarantine,  // disable the tier, record the reason, serve the rest
    kRefuse,      // fail the whole stack assembly loudly
  };

  Kind kind = Kind::kLru;
  // Probed during lookup descent. false = write-only layer (e.g. publish to
  // a remote authority you never read back from).
  bool read_through = true;
  // Receives publishes and hit promotions. false = read-only layer (e.g. a
  // pre-warmed snapshot replica).
  bool write_through = true;
  MismatchPolicy on_mismatch = MismatchPolicy::kQuarantine;

  // kLru: entry bound (0 disables storage, the knob-off idiom).
  size_t capacity = 1 << 16;

  // kLocalStore: the store directory plus its map bound (0 = unbounded; see
  // VerdictStoreOptions::max_entries).
  std::string path;
  uint64_t store_max_entries = 0;

  // kRemote: the connected transport plus the negative-entry TTL — a fetch
  // miss is remembered locally for this long, so a peer cannot pin "unknown"
  // forever once the authority learns the verdict (0 = never cache misses).
  std::shared_ptr<VerdictTransport> transport;
  std::chrono::milliseconds remote_negative_ttl{250};

  static TierSpec Lru(size_t capacity) {
    TierSpec s;
    s.kind = Kind::kLru;
    s.capacity = capacity;
    return s;
  }
  static TierSpec LocalStore(std::string path, uint64_t max_entries = 0) {
    TierSpec s;
    s.kind = Kind::kLocalStore;
    s.path = std::move(path);
    s.store_max_entries = max_entries;
    return s;
  }
  static TierSpec Remote(std::shared_ptr<VerdictTransport> transport) {
    TierSpec s;
    s.kind = Kind::kRemote;
    s.transport = std::move(transport);
    return s;
  }
};

// --- local backends ----------------------------------------------------------

// Tier 0 in every default stack: the in-memory verdict LRU the engine always
// had, now behind the common interface (and its own mutex, off the engine's
// cache lock). Nothing to flush; never mismatches (same build, same scheme).
class LruTier final : public VerdictTier {
 public:
  explicit LruTier(size_t capacity) : cache_(capacity) {}

  std::string_view Name() const override { return "lru"; }
  std::optional<StoredVerdict> Lookup(const std::string& key) override;
  bool Publish(const std::string& key, const StoredVerdict& verdict) override;
  Status Flush() override { return Status::OK(); }
  VerdictTierStats Stats() const override;
  uint64_t Fingerprint() const override { return StoreSchemaFingerprint(); }
  DeltaReceipt ApplyDelta(const LineageDelta& ld) override;
  void Clear() override;

 private:
  mutable std::mutex mu_;
  LruCache<StoredVerdict> cache_;
  uint64_t lookups_ = 0;
  uint64_t hits_ = 0;
  uint64_t publishes_ = 0;
};

// The persistent VerdictStore (engine/store.h) behind the tier interface.
// Publish is insert-if-absent straight into the store's memory map + pending
// buffer; Flush appends the write-behind log. The store's own guards
// (version/fingerprint/checksum quarantine, flock single-owner) are
// unchanged — this adapter adds nothing between the engine and them.
class LocalStoreTier final : public VerdictTier {
 public:
  // Takes ownership of an already-opened store (TierStack::Assemble opens it
  // so open failures flow through the spec's mismatch policy).
  explicit LocalStoreTier(std::unique_ptr<VerdictStore> store);

  std::string_view Name() const override { return name_; }
  std::optional<StoredVerdict> Lookup(const std::string& key) override;
  bool Publish(const std::string& key, const StoredVerdict& verdict) override;
  Status Flush() override;
  VerdictTierStats Stats() const override;
  uint64_t Fingerprint() const override { return StoreSchemaFingerprint(); }
  DeltaReceipt ApplyDelta(const LineageDelta& ld) override {
    return store_->ApplyDelta(ld);
  }
  bool HasPendingWrites() const override { return store_->has_pending(); }

  VerdictStore* store() const { return store_.get(); }

 private:
  std::unique_ptr<VerdictStore> store_;
  std::string name_;

  mutable std::mutex mu_;
  uint64_t lookups_ = 0;
  uint64_t hits_ = 0;
  uint64_t publishes_ = 0;
  uint64_t flushes_ = 0;
  uint64_t flush_failures_ = 0;
};

// --- the assembled hierarchy -------------------------------------------------

class TierStack {
 public:
  // One row per spec, in spec order — including tiers that did not make it
  // (active = false, status says why). This is the introspection surface
  // tests and ops read; a quarantined tier is visible here, never silently
  // absent.
  struct TierDescriptor {
    std::string name;
    TierSpec::Kind kind = TierSpec::Kind::kLru;
    bool active = false;
    Status status;  // OK when active; the quarantine reason otherwise
  };

  // Builds every tier, runs the fingerprint handshake, applies each spec's
  // mismatch policy. Fails only when a kRefuse tier mismatches or fails to
  // construct (or a spec is malformed); kQuarantine problems leave a
  // descriptor with the reason and the rest of the stack serving.
  static Result<std::unique_ptr<TierStack>> Assemble(
      const std::vector<TierSpec>& specs);

  struct LookupResult {
    StoredVerdict verdict;
    size_t tier_index = 0;       // which stack position answered
    TierSpec::Kind kind = TierSpec::Kind::kLru;
    bool buffered_writes = false;  // promotion left bytes for a Flush()
  };

  // Probes read-through tiers in order; on a hit at tier N, publishes the
  // verdict into every cheaper write-through tier (the promotion that keeps
  // hot keys near memory) and reports whether that buffered durable bytes.
  std::optional<LookupResult> Lookup(const std::string& key);

  struct PublishReceipt {
    uint64_t accepted = 0;         // tiers that took a new entry
    bool buffered_writes = false;  // some tier needs a Flush()
  };

  // Fans the verdict out to every write-through tier.
  PublishReceipt Publish(const std::string& key, const StoredVerdict& verdict);

  struct PrefetchReceipt {
    uint64_t keys = 0;             // distinct keys probed
    uint64_t resolved = 0;         // keys some tier answered
    bool buffered_writes = false;  // promotion left bytes for a Flush()
  };

  // Warms the cheap tiers for a burst: probes read-through tiers in order
  // with LookupMany (deduplicated keys; resolved keys drop out of later
  // probes) and promotes every hit into the cheaper write-through tiers,
  // exactly as Lookup would one key at a time. A network tier thus pays one
  // batched round trip for the burst instead of one RTT per key. Purely an
  // optimization: per-tier lookup counters tick for prefetched keys (they
  // are real probes), but a later Lookup of a prefetched key is what the
  // engine-level counters see.
  PrefetchReceipt Prefetch(const std::vector<std::string>& keys);

  // Drives one schema edit through every active tier (read-through or not —
  // a write-only tier holds entries too) and sums the per-tier receipts.
  // Cheap tiers migrate in place; the store compacts; a remote tier ships
  // the delta when its peer speaks kTierOpApplyDelta and degrades to
  // dropping otherwise. Not atomic across tiers: a later tier may briefly
  // still hold old-Σ entries while a cheaper one is migrated, which is
  // harmless because old-Σ keys are unreachable from new-Σ lookups.
  DeltaReceipt ApplyDelta(const LineageDelta& ld);

  // Flushes every active tier; returns the first failure (all tiers are
  // still attempted — one full disk must not strand the remote batch).
  Status Flush();

  // ClearCaches semantics: volatile state only.
  void Clear();

  std::vector<VerdictTierStats> Stats() const;
  const std::vector<TierDescriptor>& descriptors() const {
    return descriptors_;
  }

  // Back-compat accessors for the store_path era: the first local-store
  // tier's VerdictStore (nullptr when the stack has none) and the first
  // LRU tier's entry count (the old cache_sizes().verdict_entries gauge).
  VerdictStore* local_store() const;
  size_t lru_entries() const;

  // True when any tier still has buffered publishes (used by teardown and
  // tests; the per-call receipts drive steady-state flush scheduling).
  bool HasPendingWrites() const;

 private:
  TierStack() = default;

  // Active tiers, probe order. descriptors_ covers these AND the
  // quarantined ones; actives_[i].second is the index into descriptors_.
  std::vector<std::pair<std::unique_ptr<VerdictTier>, size_t>> actives_;
  std::vector<TierDescriptor> descriptors_;
  std::vector<TierSpec> specs_;  // aligned with descriptors_
};

}  // namespace cqchase

#endif  // CQCHASE_ENGINE_TIER_H_
