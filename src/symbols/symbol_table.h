// SymbolTable: the shared universe of symbols (constants, DVs, NDVs) for one
// containment problem. Queries, chases and database instances built against
// the same table can be compared and mapped into each other directly — the
// device Theorem 1 of the paper relies on ("view the chase as a database").
//
// The table also implements the paper's chase-NDV naming scheme: when the IND
// chase rule introduces a fresh NDV, its identity encodes the attribute, the
// source conjunct, the IND applied and the level of the created conjunct, and
// its position in the lexicographic order follows every symbol created
// earlier (guaranteed here because order == creation order within a kind).
#ifndef CQCHASE_SYMBOLS_SYMBOL_TABLE_H_
#define CQCHASE_SYMBOLS_SYMBOL_TABLE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "symbols/term.h"

namespace cqchase {

// Provenance of an NDV created by the IND chase rule (see "IND CHASE RULE",
// Section 3): which attribute column it fills, which conjunct and IND caused
// its creation, and the level of the created conjunct.
struct NdvProvenance {
  uint32_t attribute_index = 0;  // column in the created conjunct
  uint64_t source_conjunct = 0;  // id of the conjunct the IND was applied to
  uint32_t ind_index = 0;        // index of the IND in the DependencySet
  uint32_t level = 0;            // level of the created conjunct
};

// Thread safety: all mutating and reading members are guarded by an internal
// mutex, so concurrent chases (ContainmentEngine::CheckMany fan-out) can
// intern fresh NDVs into one shared arena. Entries live in deques and are
// never moved after creation, so the references Name() hands out stay valid
// across later insertions without holding the lock.
class SymbolTable {
 public:
  SymbolTable() : mu_(std::make_unique<std::mutex>()) {}

  // SymbolTables are identity objects shared by reference; copying one would
  // silently fork the symbol universe. Moves are custom (not defaulted) so
  // the moved-from table keeps a live mutex and stays a valid empty table
  // rather than crashing on first use.
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;
  SymbolTable(SymbolTable&& other) noexcept;
  SymbolTable& operator=(SymbolTable&& other) noexcept;

  // Interns a constant by name. Repeated calls with the same name return the
  // same Term (constants compare equal iff their names are equal).
  Term InternConstant(std::string_view name);

  // Interns a distinguished / nondistinguished variable by name. Variables
  // of different kinds live in separate namespaces.
  Term InternDistVar(std::string_view name);
  Term InternNondistVar(std::string_view name);

  // Creates a fresh NDV for the IND chase rule. The generated name encodes
  // the provenance, e.g. "n17[A2,c5,i1,L3]"; the creation index guarantees it
  // lexicographically follows all earlier symbols.
  Term MakeChaseNdv(const NdvProvenance& provenance);

  // Creates a fresh anonymous NDV (used by generators and by the Theorem 3
  // Q* construction's special z_A symbols).
  Term MakeFreshNondistVar(std::string_view name_hint);

  // Creates a fresh constant with a unique name derived from the hint.
  Term MakeFreshConstant(std::string_view name_hint);

  // Looks up an interned symbol by kind+name; nullopt if absent.
  std::optional<Term> Find(TermKind kind, std::string_view name) const;

  // Printable name of a term. Terms must belong to this table.
  const std::string& Name(Term t) const;

  // Rendering for query text that must re-parse: constants are quoted
  // ('acme') unless purely numeric (42); variables render as their names.
  std::string DisplayName(Term t) const;

  // Provenance of a chase-created NDV; nullopt for other terms.
  std::optional<NdvProvenance> Provenance(Term t) const;

  size_t num_constants() const {
    std::lock_guard<std::mutex> lock(*mu_);
    return constants_.size();
  }
  size_t num_dist_vars() const {
    std::lock_guard<std::mutex> lock(*mu_);
    return dist_vars_.size();
  }
  size_t num_nondist_vars() const {
    std::lock_guard<std::mutex> lock(*mu_);
    return nondist_vars_.size();
  }

 private:
  struct Entry {
    std::string name;
    std::optional<NdvProvenance> provenance;
  };

  std::deque<Entry>& pool(TermKind kind);
  const std::deque<Entry>& pool(TermKind kind) const;

  Term Intern(TermKind kind, std::string_view name);

  // unique_ptr keeps the table movable (a mutex itself is not); the move
  // operations re-seat a fresh mutex in the source so it stays usable.
  std::unique_ptr<std::mutex> mu_;
  std::deque<Entry> constants_;
  std::deque<Entry> dist_vars_;
  std::deque<Entry> nondist_vars_;
  std::unordered_map<std::string, uint32_t> constant_index_;
  std::unordered_map<std::string, uint32_t> dist_var_index_;
  std::unordered_map<std::string, uint32_t> nondist_var_index_;
  uint64_t fresh_counter_ = 0;
};

}  // namespace cqchase

#endif  // CQCHASE_SYMBOLS_SYMBOL_TABLE_H_
