// SymbolTable: the shared universe of symbols (constants, DVs, NDVs) for one
// containment problem. Queries, chases and database instances built against
// the same table can be compared and mapped into each other directly — the
// device Theorem 1 of the paper relies on ("view the chase as a database").
//
// The table also implements the paper's chase-NDV naming scheme: when the IND
// chase rule introduces a fresh NDV, its identity encodes the attribute, the
// source conjunct, the IND applied and the level of the created conjunct.
//
// NDV arena sharding. Chase steps are the hot path of every decision
// procedure, and each IND step mints fresh NDVs. Rather than taking the
// table mutex per mint (which serializes CheckMany's thread fan-out exactly
// where it is hottest), NDV ids are handed out in *blocks*: an NdvShard holds
// a reserved id range plus a raw pointer into the backing slab and mints
// entirely lock-free; only block handoff (one mutex acquisition per
// kNdvBlockSize mints, and none at all for FD-only chases) synchronizes.
// A destroyed shard returns its unused tail: if it is still the top of the
// id space the high-water mark rolls back (sequential workloads keep
// contiguous ids); otherwise the tail becomes a permanent hole (<= 127 ids
// per handoff, negligible against the 2^32 id space). Every block is
// therefore reserved *above every symbol in existence at handoff time*, so
// a fresh NDV always lexicographically follows the query terms and all of
// its chase's earlier mints — the paper's naming invariant. Across
// concurrently-minting shards the interleaving of already-reserved blocks
// is whatever the thread schedule made it; verdicts are isomorphism-
// invariant, so that cannot change an answer.
//
// NDV entries live in fixed-size slabs that never move once allocated, so
// the references Name() hands out stay valid across later insertions, and a
// shard can fill its reserved slots without touching any shared structure.
// Shard-minted NDVs are *not* registered in the name index (that would need
// the lock): Find() does not see them. Their names embed the id, so they
// cannot collide with each other; they are fresh symbols nothing re-interns.
#ifndef CQCHASE_SYMBOLS_SYMBOL_TABLE_H_
#define CQCHASE_SYMBOLS_SYMBOL_TABLE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "symbols/term.h"

namespace cqchase {

// Provenance of an NDV created by the IND chase rule (see "IND CHASE RULE",
// Section 3): which attribute column it fills, which conjunct and IND caused
// its creation, and the level of the created conjunct.
struct NdvProvenance {
  uint32_t attribute_index = 0;  // column in the created conjunct
  uint64_t source_conjunct = 0;  // id of the conjunct the IND was applied to
  uint32_t ind_index = 0;        // index of the IND in the DependencySet
  uint32_t level = 0;            // level of the created conjunct
};

// Thread safety: interning, fresh-symbol creation and all by-name lookups
// are guarded by an internal mutex. NDV *minting through an NdvShard* is
// lock-free within the shard's reserved block; see the arena notes above.
// Reading Name()/Provenance() of a term is safe from any thread that
// obtained the term through a proper happens-before edge (a mutex, a thread
// join, a cache publish) with its creator — which is the only way a term can
// travel between threads anyway.
class SymbolTable {
 public:
  // Ids are reserved in blocks of this many NDVs; slabs hold kNdvSlabSize
  // entries. Block size divides slab size, so one block never straddles a
  // slab boundary and a shard can cache a single raw Entry pointer.
  static constexpr uint32_t kNdvBlockSize = 128;
  static constexpr uint32_t kNdvSlabSize = 1024;

  SymbolTable() : mu_(std::make_unique<std::mutex>()) {}

  // SymbolTables are identity objects shared by reference; copying one would
  // silently fork the symbol universe. Moves are custom (not defaulted) so
  // the moved-from table keeps a live mutex and stays a valid empty table
  // rather than crashing on first use. Moving a table with live NdvShards
  // attached is undefined behavior (the shards keep pointing at the source).
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;
  SymbolTable(SymbolTable&& other) noexcept;
  SymbolTable& operator=(SymbolTable&& other) noexcept;

  // Interns a constant by name. Repeated calls with the same name return the
  // same Term (constants compare equal iff their names are equal).
  Term InternConstant(std::string_view name);

  // Interns a distinguished / nondistinguished variable by name. Variables
  // of different kinds live in separate namespaces.
  Term InternDistVar(std::string_view name);
  Term InternNondistVar(std::string_view name);

  // Creates a fresh NDV for the IND chase rule, taking the table mutex. The
  // generated name encodes the provenance, e.g. "n17[A2,c5,i1,L3]". Chase
  // hot loops should mint through an NdvShard instead; this convenience
  // entry point serves the single-threaded artifact builders (EMVD chase,
  // Theorem 3 constructions).
  Term MakeChaseNdv(const NdvProvenance& provenance);

  // Creates a fresh anonymous NDV (used by generators and by the Theorem 3
  // Q* construction's special z_A symbols).
  Term MakeFreshNondistVar(std::string_view name_hint);

  // Creates a fresh constant with a unique name derived from the hint.
  Term MakeFreshConstant(std::string_view name_hint);

  // Looks up an interned symbol by kind+name; nullopt if absent. Shard-
  // minted NDVs are not indexed and therefore not found here.
  std::optional<Term> Find(TermKind kind, std::string_view name) const;

  // Printable name of a term. Terms must belong to this table.
  const std::string& Name(Term t) const;

  // Rendering for query text that must re-parse: constants are quoted
  // ('acme') unless purely numeric (42); variables render as their names.
  std::string DisplayName(Term t) const;

  // Provenance of a chase-created NDV; nullopt for other terms.
  std::optional<NdvProvenance> Provenance(Term t) const;

  // A per-worker handle that mints NDVs lock-free from reserved id blocks.
  // One shard must be used by one thread at a time (typically: owned by one
  // Chase). Destroying (or moving from) a shard returns its unused id range
  // to the table's free pool. The table must outlive every shard.
  class NdvShard {
   public:
    NdvShard() = default;
    explicit NdvShard(SymbolTable* table) : table_(table) {}
    ~NdvShard() { ReturnRemainder(); }

    NdvShard(const NdvShard&) = delete;
    NdvShard& operator=(const NdvShard&) = delete;
    NdvShard(NdvShard&& other) noexcept { *this = std::move(other); }
    NdvShard& operator=(NdvShard&& other) noexcept {
      if (this != &other) {
        ReturnRemainder();
        table_ = other.table_;
        base_ = other.base_;
        begin_ = other.begin_;
        next_ = other.next_;
        end_ = other.end_;
        other.table_ = nullptr;
        other.base_ = nullptr;
        other.begin_ = other.next_ = other.end_ = 0;
      }
      return *this;
    }

    // Lock-free except when the current block is exhausted (then one table
    // mutex acquisition reserves the next block). Minted ids strictly
    // increase and follow every symbol that existed at block-handoff time.
    Term MakeChaseNdv(const NdvProvenance& provenance);

    bool attached() const { return table_ != nullptr; }

   private:
    void Refill();           // reserve the next block (locks the table)
    void ReturnRemainder();  // give [next_, end_) back (locks the table)

    SymbolTable* table_ = nullptr;
    void* base_ = nullptr;  // Entry* of slot begin_; opaque to keep Entry private
    uint32_t begin_ = 0;    // first id of the current block
    uint32_t next_ = 0;     // next id to mint
    uint32_t end_ = 0;      // one past the last reserved id
  };

  // Creates a shard minting into this table. Cheap; the first block is
  // reserved lazily on the first mint.
  NdvShard CreateShard() { return NdvShard(this); }

  size_t num_constants() const {
    std::lock_guard<std::mutex> lock(*mu_);
    return constants_.size();
  }
  size_t num_dist_vars() const {
    std::lock_guard<std::mutex> lock(*mu_);
    return dist_vars_.size();
  }
  // Count of *minted* NDVs (interned + chase-created). With sharding the id
  // space may contain reserved-but-unused holes, so this can be less than
  // the highest NDV id.
  size_t num_nondist_vars() const {
    return ndv_count_.load(std::memory_order_relaxed);
  }
  // Total NDV id blocks ever handed out (to shards and to the table's own
  // intern cursor). The arena's amortization story in one number: compare
  // against num_nondist_vars() — the old design paid one lock per mint,
  // this one pays one per block.
  uint64_t ndv_blocks_handed_out() const {
    std::lock_guard<std::mutex> lock(*mu_);
    return ndv_blocks_handed_out_;
  }

 private:
  friend class NdvShard;

  struct Entry {
    std::string name;
    std::optional<NdvProvenance> provenance;
  };

  // A reserved-but-unconsumed id range, [begin, end); always within one
  // block (hence one slab).
  struct IdRange {
    uint32_t begin = 0;
    uint32_t end = 0;
  };

  std::deque<Entry>& pool(TermKind kind);
  const std::deque<Entry>& pool(TermKind kind) const;

  Term Intern(TermKind kind, std::string_view name);

  // --- NDV arena internals (all require *mu_ unless noted) -----------------

  // Slot address of an NDV id. Safe to call without the lock only for ids
  // inside a range the caller owns (the slab pointer is cached by shards).
  Entry* NdvSlotLocked(uint32_t id) {
    return &ndv_slabs_[id / kNdvSlabSize][id % kNdvSlabSize];
  }
  const Entry* NdvSlotLocked(uint32_t id) const {
    return const_cast<SymbolTable*>(this)->NdvSlotLocked(id);
  }

  // Grows the slab array to cover ids < limit.
  void EnsureNdvStorageLocked(uint32_t limit);

  // Reserves the next block at the high-water mark (clipped to the current
  // slab's end so a block never straddles slabs). Blocks always sit above
  // every id reserved before, which is what keeps fresh NDVs
  // lexicographically above all existing symbols.
  IdRange ReserveBlockLocked();

  // Takes one id for an intern/fresh-NDV call, from the table's own cursor
  // range (refilled through ReserveBlockLocked like any shard).
  uint32_t ReserveSingleNdvLocked();

  // Composes the provenance-encoding chase-NDV name, e.g. "n17[A2,c5,i1,L3]".
  static std::string ChaseNdvName(uint32_t id, const NdvProvenance& p);

  // Returns an unused tail: rolls the high-water mark back when the range
  // still tops the id space, else abandons it (reusing a low range would
  // put later-minted NDVs lexicographically below existing symbols).
  void ReturnRangeLocked(IdRange range);

  // unique_ptr keeps the table movable (a mutex itself is not); the move
  // operations re-seat a fresh mutex in the source so it stays usable.
  std::unique_ptr<std::mutex> mu_;
  std::deque<Entry> constants_;
  std::deque<Entry> dist_vars_;
  std::unordered_map<std::string, uint32_t> constant_index_;
  std::unordered_map<std::string, uint32_t> dist_var_index_;
  std::unordered_map<std::string, uint32_t> nondist_var_index_;
  uint64_t fresh_counter_ = 0;

  // NDV arena: slabs never move or shrink; entries are written once by
  // their id's owner and read-only afterwards.
  std::vector<std::unique_ptr<Entry[]>> ndv_slabs_;
  uint32_t ndv_limit_ = 0;  // high-water mark of block reservation
  IdRange intern_range_;    // the table's own single-id cursor
  uint64_t ndv_blocks_handed_out_ = 0;
  std::atomic<uint64_t> ndv_count_{0};
};

}  // namespace cqchase

#endif  // CQCHASE_SYMBOLS_SYMBOL_TABLE_H_
