// Term: a symbol occurring in a conjunctive query, a chase, or a database
// instance. Following Johnson & Klug (Section 2), a term is a constant, a
// distinguished variable (DV) or a nondistinguished variable (NDV).
//
// Terms are lightweight value types: a kind plus an index into a SymbolTable.
// The total order on terms implements the paper's lexicographic convention:
// constants come first (the FD chase rule always prefers a constant as merge
// representative), then DVs, then NDVs ("DVs are assumed always to precede
// NDVs"), and within one kind, creation order — which makes chase-created
// NDVs "follow all previously introduced symbols", exactly as the paper's
// NDV-naming scheme requires.
#ifndef CQCHASE_SYMBOLS_TERM_H_
#define CQCHASE_SYMBOLS_TERM_H_

#include <cstdint>
#include <functional>
#include <tuple>

#include "base/hash.h"

namespace cqchase {

enum class TermKind : uint8_t {
  kConstant = 0,
  kDistVar = 1,     // distinguished variable
  kNondistVar = 2,  // nondistinguished variable
};

class Term {
 public:
  // Default-constructed terms are an invalid sentinel; usable in containers.
  Term() : kind_(TermKind::kNondistVar), id_(kInvalidId) {}
  Term(TermKind kind, uint32_t id) : kind_(kind), id_(id) {}

  static constexpr uint32_t kInvalidId = 0xffffffffu;
  static Term Invalid() { return Term(); }

  TermKind kind() const { return kind_; }
  uint32_t id() const { return id_; }

  bool is_valid() const { return id_ != kInvalidId; }
  bool is_constant() const { return kind_ == TermKind::kConstant; }
  bool is_variable() const { return kind_ != TermKind::kConstant; }
  bool is_dist_var() const { return kind_ == TermKind::kDistVar; }
  bool is_nondist_var() const { return kind_ == TermKind::kNondistVar; }

  friend bool operator==(Term a, Term b) {
    return a.kind_ == b.kind_ && a.id_ == b.id_;
  }
  friend bool operator!=(Term a, Term b) { return !(a == b); }

  // Lexicographic order used by the FD chase rule's tie-breaking: constants
  // before DVs before NDVs; within a kind, earlier-created (smaller id)
  // first.
  friend bool operator<(Term a, Term b) {
    return std::tuple(static_cast<int>(a.kind_), a.id_) <
           std::tuple(static_cast<int>(b.kind_), b.id_);
  }
  friend bool operator<=(Term a, Term b) { return a < b || a == b; }
  friend bool operator>(Term a, Term b) { return b < a; }
  friend bool operator>=(Term a, Term b) { return b <= a; }

  size_t hash() const {
    return HashCombine(static_cast<size_t>(kind_) + 1,
                       static_cast<size_t>(id_));
  }

 private:
  TermKind kind_;
  uint32_t id_;
};

}  // namespace cqchase

template <>
struct std::hash<cqchase::Term> {
  size_t operator()(cqchase::Term t) const { return t.hash(); }
};

#endif  // CQCHASE_SYMBOLS_TERM_H_
