#include "symbols/symbol_table.h"

#include <cassert>

#include "base/string_util.h"

namespace cqchase {

std::vector<SymbolTable::Entry>& SymbolTable::pool(TermKind kind) {
  switch (kind) {
    case TermKind::kConstant:
      return constants_;
    case TermKind::kDistVar:
      return dist_vars_;
    case TermKind::kNondistVar:
      return nondist_vars_;
  }
  assert(false);
  return nondist_vars_;
}

const std::vector<SymbolTable::Entry>& SymbolTable::pool(TermKind kind) const {
  return const_cast<SymbolTable*>(this)->pool(kind);
}

Term SymbolTable::Intern(TermKind kind, std::string_view name) {
  auto& index = kind == TermKind::kConstant  ? constant_index_
                : kind == TermKind::kDistVar ? dist_var_index_
                                             : nondist_var_index_;
  auto it = index.find(std::string(name));
  if (it != index.end()) return Term(kind, it->second);
  auto& p = pool(kind);
  uint32_t id = static_cast<uint32_t>(p.size());
  p.push_back(Entry{std::string(name), std::nullopt});
  index.emplace(std::string(name), id);
  return Term(kind, id);
}

Term SymbolTable::InternConstant(std::string_view name) {
  return Intern(TermKind::kConstant, name);
}

Term SymbolTable::InternDistVar(std::string_view name) {
  return Intern(TermKind::kDistVar, name);
}

Term SymbolTable::InternNondistVar(std::string_view name) {
  return Intern(TermKind::kNondistVar, name);
}

Term SymbolTable::MakeChaseNdv(const NdvProvenance& provenance) {
  uint32_t id = static_cast<uint32_t>(nondist_vars_.size());
  std::string name =
      StrCat("n", id, "[A", provenance.attribute_index, ",c",
             provenance.source_conjunct, ",i", provenance.ind_index, ",L",
             provenance.level, "]");
  nondist_vars_.push_back(Entry{std::move(name), provenance});
  nondist_var_index_.emplace(nondist_vars_.back().name, id);
  return Term(TermKind::kNondistVar, id);
}

Term SymbolTable::MakeFreshNondistVar(std::string_view name_hint) {
  std::string name = StrCat(name_hint, "#", fresh_counter_++);
  return Intern(TermKind::kNondistVar, name);
}

Term SymbolTable::MakeFreshConstant(std::string_view name_hint) {
  std::string name = StrCat(name_hint, "#", fresh_counter_++);
  return Intern(TermKind::kConstant, name);
}

std::optional<Term> SymbolTable::Find(TermKind kind,
                                      std::string_view name) const {
  const auto& index = kind == TermKind::kConstant  ? constant_index_
                      : kind == TermKind::kDistVar ? dist_var_index_
                                                   : nondist_var_index_;
  auto it = index.find(std::string(name));
  if (it == index.end()) return std::nullopt;
  return Term(kind, it->second);
}

const std::string& SymbolTable::Name(Term t) const {
  const auto& p = pool(t.kind());
  assert(t.id() < p.size());
  return p[t.id()].name;
}

std::string SymbolTable::DisplayName(Term t) const {
  const std::string& name = Name(t);
  if (!t.is_constant()) return name;
  bool numeric = !name.empty();
  for (char c : name) {
    if (c < '0' || c > '9') {
      numeric = false;
      break;
    }
  }
  if (numeric) return name;
  return "'" + name + "'";
}

std::optional<NdvProvenance> SymbolTable::Provenance(Term t) const {
  const auto& p = pool(t.kind());
  assert(t.id() < p.size());
  return p[t.id()].provenance;
}

}  // namespace cqchase
