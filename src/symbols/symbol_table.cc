#include "symbols/symbol_table.h"

#include <cassert>

#include "base/string_util.h"

namespace cqchase {

SymbolTable::SymbolTable(SymbolTable&& other) noexcept : SymbolTable() {
  *this = std::move(other);
}

SymbolTable& SymbolTable::operator=(SymbolTable&& other) noexcept {
  if (this != &other) {
    mu_ = std::move(other.mu_);
    constants_ = std::move(other.constants_);
    dist_vars_ = std::move(other.dist_vars_);
    nondist_vars_ = std::move(other.nondist_vars_);
    constant_index_ = std::move(other.constant_index_);
    dist_var_index_ = std::move(other.dist_var_index_);
    nondist_var_index_ = std::move(other.nondist_var_index_);
    fresh_counter_ = other.fresh_counter_;
    other.mu_ = std::make_unique<std::mutex>();
    other.constants_.clear();
    other.dist_vars_.clear();
    other.nondist_vars_.clear();
    other.constant_index_.clear();
    other.dist_var_index_.clear();
    other.nondist_var_index_.clear();
    other.fresh_counter_ = 0;
  }
  return *this;
}

std::deque<SymbolTable::Entry>& SymbolTable::pool(TermKind kind) {
  switch (kind) {
    case TermKind::kConstant:
      return constants_;
    case TermKind::kDistVar:
      return dist_vars_;
    case TermKind::kNondistVar:
      return nondist_vars_;
  }
  assert(false);
  return nondist_vars_;
}

const std::deque<SymbolTable::Entry>& SymbolTable::pool(TermKind kind) const {
  return const_cast<SymbolTable*>(this)->pool(kind);
}

// Callers hold *mu_.
Term SymbolTable::Intern(TermKind kind, std::string_view name) {
  auto& index = kind == TermKind::kConstant  ? constant_index_
                : kind == TermKind::kDistVar ? dist_var_index_
                                             : nondist_var_index_;
  auto it = index.find(std::string(name));
  if (it != index.end()) return Term(kind, it->second);
  auto& p = pool(kind);
  uint32_t id = static_cast<uint32_t>(p.size());
  p.push_back(Entry{std::string(name), std::nullopt});
  index.emplace(std::string(name), id);
  return Term(kind, id);
}

Term SymbolTable::InternConstant(std::string_view name) {
  std::lock_guard<std::mutex> lock(*mu_);
  return Intern(TermKind::kConstant, name);
}

Term SymbolTable::InternDistVar(std::string_view name) {
  std::lock_guard<std::mutex> lock(*mu_);
  return Intern(TermKind::kDistVar, name);
}

Term SymbolTable::InternNondistVar(std::string_view name) {
  std::lock_guard<std::mutex> lock(*mu_);
  return Intern(TermKind::kNondistVar, name);
}

Term SymbolTable::MakeChaseNdv(const NdvProvenance& provenance) {
  std::lock_guard<std::mutex> lock(*mu_);
  uint32_t id = static_cast<uint32_t>(nondist_vars_.size());
  std::string name =
      StrCat("n", id, "[A", provenance.attribute_index, ",c",
             provenance.source_conjunct, ",i", provenance.ind_index, ",L",
             provenance.level, "]");
  nondist_vars_.push_back(Entry{std::move(name), provenance});
  nondist_var_index_.emplace(nondist_vars_.back().name, id);
  return Term(TermKind::kNondistVar, id);
}

Term SymbolTable::MakeFreshNondistVar(std::string_view name_hint) {
  std::lock_guard<std::mutex> lock(*mu_);
  std::string name = StrCat(name_hint, "#", fresh_counter_++);
  return Intern(TermKind::kNondistVar, name);
}

Term SymbolTable::MakeFreshConstant(std::string_view name_hint) {
  std::lock_guard<std::mutex> lock(*mu_);
  std::string name = StrCat(name_hint, "#", fresh_counter_++);
  return Intern(TermKind::kConstant, name);
}

std::optional<Term> SymbolTable::Find(TermKind kind,
                                      std::string_view name) const {
  std::lock_guard<std::mutex> lock(*mu_);
  const auto& index = kind == TermKind::kConstant  ? constant_index_
                      : kind == TermKind::kDistVar ? dist_var_index_
                                                   : nondist_var_index_;
  auto it = index.find(std::string(name));
  if (it == index.end()) return std::nullopt;
  return Term(kind, it->second);
}

const std::string& SymbolTable::Name(Term t) const {
  std::lock_guard<std::mutex> lock(*mu_);
  const auto& p = pool(t.kind());
  assert(t.id() < p.size());
  // Safe to hand out without the lock: deque entries are never moved or
  // mutated after creation.
  return p[t.id()].name;
}

std::string SymbolTable::DisplayName(Term t) const {
  const std::string& name = Name(t);
  if (!t.is_constant()) return name;
  bool numeric = !name.empty();
  for (char c : name) {
    if (c < '0' || c > '9') {
      numeric = false;
      break;
    }
  }
  if (numeric) return name;
  return "'" + name + "'";
}

std::optional<NdvProvenance> SymbolTable::Provenance(Term t) const {
  std::lock_guard<std::mutex> lock(*mu_);
  const auto& p = pool(t.kind());
  assert(t.id() < p.size());
  return p[t.id()].provenance;
}

}  // namespace cqchase
