#include "symbols/symbol_table.h"

#include <algorithm>
#include <cassert>

#include "base/string_util.h"

namespace cqchase {

static_assert(SymbolTable::kNdvSlabSize % SymbolTable::kNdvBlockSize == 0,
              "blocks must tile slabs exactly");

SymbolTable::SymbolTable(SymbolTable&& other) noexcept : SymbolTable() {
  *this = std::move(other);
}

SymbolTable& SymbolTable::operator=(SymbolTable&& other) noexcept {
  if (this != &other) {
    mu_ = std::move(other.mu_);
    constants_ = std::move(other.constants_);
    dist_vars_ = std::move(other.dist_vars_);
    constant_index_ = std::move(other.constant_index_);
    dist_var_index_ = std::move(other.dist_var_index_);
    nondist_var_index_ = std::move(other.nondist_var_index_);
    fresh_counter_ = other.fresh_counter_;
    ndv_slabs_ = std::move(other.ndv_slabs_);
    ndv_limit_ = other.ndv_limit_;
    intern_range_ = other.intern_range_;
    ndv_blocks_handed_out_ = other.ndv_blocks_handed_out_;
    ndv_count_.store(other.ndv_count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    other.mu_ = std::make_unique<std::mutex>();
    other.constants_.clear();
    other.dist_vars_.clear();
    other.constant_index_.clear();
    other.dist_var_index_.clear();
    other.nondist_var_index_.clear();
    other.fresh_counter_ = 0;
    other.ndv_slabs_.clear();
    other.ndv_limit_ = 0;
    other.intern_range_ = IdRange{};
    other.ndv_blocks_handed_out_ = 0;
    other.ndv_count_.store(0, std::memory_order_relaxed);
  }
  return *this;
}

std::deque<SymbolTable::Entry>& SymbolTable::pool(TermKind kind) {
  switch (kind) {
    case TermKind::kConstant:
      return constants_;
    case TermKind::kDistVar:
      return dist_vars_;
    case TermKind::kNondistVar:
      break;  // NDVs live in slabs, not a deque
  }
  assert(kind != TermKind::kNondistVar);
  return dist_vars_;
}

const std::deque<SymbolTable::Entry>& SymbolTable::pool(TermKind kind) const {
  return const_cast<SymbolTable*>(this)->pool(kind);
}

// --- NDV arena ---------------------------------------------------------------

void SymbolTable::EnsureNdvStorageLocked(uint32_t limit) {
  while (ndv_slabs_.size() * kNdvSlabSize < limit) {
    ndv_slabs_.push_back(std::make_unique<Entry[]>(kNdvSlabSize));
  }
}

SymbolTable::IdRange SymbolTable::ReserveBlockLocked() {
  ++ndv_blocks_handed_out_;
  // Rollbacks can leave ndv_limit_ mid-slab; clip so a block never
  // straddles a slab boundary (shards cache one raw slot pointer).
  const uint32_t slab_end =
      (ndv_limit_ / kNdvSlabSize + 1) * kNdvSlabSize;
  IdRange r{ndv_limit_, std::min(ndv_limit_ + kNdvBlockSize, slab_end)};
  ndv_limit_ = r.end;
  EnsureNdvStorageLocked(ndv_limit_);
  return r;
}

void SymbolTable::ReturnRangeLocked(IdRange range) {
  if (range.begin >= range.end) return;
  if (range.end == ndv_limit_) ndv_limit_ = range.begin;
  // Otherwise the tail is abandoned: ids are plentiful, order is not.
}

uint32_t SymbolTable::ReserveSingleNdvLocked() {
  if (intern_range_.begin >= intern_range_.end) {
    intern_range_ = ReserveBlockLocked();
  }
  return intern_range_.begin++;
}

std::string SymbolTable::ChaseNdvName(uint32_t id, const NdvProvenance& p) {
  return StrCat("n", id, "[A", p.attribute_index, ",c", p.source_conjunct,
                ",i", p.ind_index, ",L", p.level, "]");
}

Term SymbolTable::NdvShard::MakeChaseNdv(const NdvProvenance& provenance) {
  assert(table_ != nullptr);
  if (next_ == end_) Refill();
  const uint32_t id = next_++;
  Entry& slot = static_cast<Entry*>(base_)[id - begin_];
  slot.name = ChaseNdvName(id, provenance);
  slot.provenance = provenance;
  table_->ndv_count_.fetch_add(1, std::memory_order_relaxed);
  return Term(TermKind::kNondistVar, id);
}

void SymbolTable::NdvShard::Refill() {
  std::lock_guard<std::mutex> lock(*table_->mu_);
  IdRange r = table_->ReserveBlockLocked();
  begin_ = next_ = r.begin;
  end_ = r.end;
  base_ = table_->NdvSlotLocked(r.begin);
}

void SymbolTable::NdvShard::ReturnRemainder() {
  if (table_ == nullptr || next_ >= end_) return;
  std::lock_guard<std::mutex> lock(*table_->mu_);
  table_->ReturnRangeLocked(IdRange{next_, end_});
  begin_ = next_ = end_ = 0;
  base_ = nullptr;
}

// --- Interning (locked paths) ------------------------------------------------

// Callers hold *mu_.
Term SymbolTable::Intern(TermKind kind, std::string_view name) {
  auto& index = kind == TermKind::kConstant  ? constant_index_
                : kind == TermKind::kDistVar ? dist_var_index_
                                             : nondist_var_index_;
  auto it = index.find(std::string(name));
  if (it != index.end()) return Term(kind, it->second);
  uint32_t id;
  if (kind == TermKind::kNondistVar) {
    id = ReserveSingleNdvLocked();
    Entry* slot = NdvSlotLocked(id);
    slot->name = std::string(name);
    slot->provenance = std::nullopt;
    ndv_count_.fetch_add(1, std::memory_order_relaxed);
  } else {
    auto& p = pool(kind);
    id = static_cast<uint32_t>(p.size());
    p.push_back(Entry{std::string(name), std::nullopt});
  }
  index.emplace(std::string(name), id);
  return Term(kind, id);
}

Term SymbolTable::InternConstant(std::string_view name) {
  std::lock_guard<std::mutex> lock(*mu_);
  return Intern(TermKind::kConstant, name);
}

Term SymbolTable::InternDistVar(std::string_view name) {
  std::lock_guard<std::mutex> lock(*mu_);
  return Intern(TermKind::kDistVar, name);
}

Term SymbolTable::InternNondistVar(std::string_view name) {
  std::lock_guard<std::mutex> lock(*mu_);
  return Intern(TermKind::kNondistVar, name);
}

Term SymbolTable::MakeChaseNdv(const NdvProvenance& provenance) {
  std::lock_guard<std::mutex> lock(*mu_);
  const uint32_t id = ReserveSingleNdvLocked();
  Entry* slot = NdvSlotLocked(id);
  slot->name = ChaseNdvName(id, provenance);
  slot->provenance = provenance;
  ndv_count_.fetch_add(1, std::memory_order_relaxed);
  nondist_var_index_.emplace(slot->name, id);
  return Term(TermKind::kNondistVar, id);
}

Term SymbolTable::MakeFreshNondistVar(std::string_view name_hint) {
  std::lock_guard<std::mutex> lock(*mu_);
  std::string name = StrCat(name_hint, "#", fresh_counter_++);
  return Intern(TermKind::kNondistVar, name);
}

Term SymbolTable::MakeFreshConstant(std::string_view name_hint) {
  std::lock_guard<std::mutex> lock(*mu_);
  std::string name = StrCat(name_hint, "#", fresh_counter_++);
  return Intern(TermKind::kConstant, name);
}

std::optional<Term> SymbolTable::Find(TermKind kind,
                                      std::string_view name) const {
  std::lock_guard<std::mutex> lock(*mu_);
  const auto& index = kind == TermKind::kConstant  ? constant_index_
                      : kind == TermKind::kDistVar ? dist_var_index_
                                                   : nondist_var_index_;
  auto it = index.find(std::string(name));
  if (it == index.end()) return std::nullopt;
  return Term(kind, it->second);
}

const std::string& SymbolTable::Name(Term t) const {
  std::lock_guard<std::mutex> lock(*mu_);
  if (t.kind() == TermKind::kNondistVar) {
    assert(t.id() < ndv_limit_);
    // Safe to hand out without the lock: slab entries are written once by
    // their owner and never moved.
    return NdvSlotLocked(t.id())->name;
  }
  const auto& p = pool(t.kind());
  assert(t.id() < p.size());
  return p[t.id()].name;
}

std::string SymbolTable::DisplayName(Term t) const {
  const std::string& name = Name(t);
  if (!t.is_constant()) return name;
  bool numeric = !name.empty();
  for (char c : name) {
    if (c < '0' || c > '9') {
      numeric = false;
      break;
    }
  }
  if (numeric) return name;
  return "'" + name + "'";
}

std::optional<NdvProvenance> SymbolTable::Provenance(Term t) const {
  std::lock_guard<std::mutex> lock(*mu_);
  if (t.kind() == TermKind::kNondistVar) {
    assert(t.id() < ndv_limit_);
    return NdvSlotLocked(t.id())->provenance;
  }
  const auto& p = pool(t.kind());
  assert(t.id() < p.size());
  return p[t.id()].provenance;
}

}  // namespace cqchase
