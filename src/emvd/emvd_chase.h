// A chase engine for FDs + EMVDs, the extension Section 5 sketches. The
// EMVD chase rule mirrors Maier–Mendelzon–Sagiv generalized to the embedded
// case:
//
// EMVD CHASE RULE. For an EMVD R: X ->> Y | Z applicable to an ordered pair
// (c1, c2) of R-conjuncts with c1[X] = c2[X], add a new conjunct c' with
// c'[X] = c1[X], c'[Y] = c1[Y], c'[Z] = c2[Z] and a fresh NDV in every
// remaining column. As with INDs we use the *required* discipline: the rule
// fires only when no conjunct already carries that (X, Y, Z) combination.
//
// Like the IND chase, the embedded rule introduces new symbols and the chase
// can be infinite; the engine is incremental with explicit limits. Levels:
// level(c') = max(level(c1), level(c2)) + 1.
//
// Termination: a SINGLE EMVD always saturates under the required discipline
// — fresh symbols land only in uncovered columns, so the set of (X, Y, Z)
// combinations never grows beyond the original active domain. Divergence
// needs interacting EMVDs whose fresh columns feed each other's covered
// sides (bench_emvd_chase exhibits a two-EMVD set growing forever), which is
// the precise form of Section 5's "chases involving EMVDs ... do not
// terminate" caveat in this tuple-level formalization.
//
// The Theorem 1 argument extends verbatim (the Lemma 1 induction needs only
// that a Σ-obeying database supply a witness row, which the EMVD definition
// provides), so a homomorphism Q' -> emvd-chase(Q) certifies containment.
// The paper leaves the complexity question open ("Which sets of EMVDs give
// rise to containment problems that are 'only' as hard as NP?") — there is
// no analogue of the Lemma 5 level bound here, so CheckContainmentEmvd is a
// sound SEMI-decision: "contained" and saturation-certified "not contained"
// are exact; hitting a limit yields kResourceExhausted.
#ifndef CQCHASE_EMVD_EMVD_CHASE_H_
#define CQCHASE_EMVD_EMVD_CHASE_H_

#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "chase/chase.h"
#include "core/containment.h"
#include "core/homomorphism.h"
#include "cq/query.h"
#include "deps/dependency_set.h"
#include "emvd/emvd.h"

namespace cqchase {

class EmvdChase {
 public:
  EmvdChase(const Catalog* catalog, SymbolTable* symbols,
            const DependencySet* fds, const std::vector<EmbeddedMvd>* emvds,
            ChaseLimits limits);

  // Loads Q's conjuncts at level 0 and runs the initial FD phase (via the
  // core chase engine). `fds` must contain FDs only.
  Status Init(const ConjunctiveQuery& query);

  // Completes the prefix up to `level` (every pair of conjuncts with level
  // < `level` has been considered for every EMVD, FDs re-exhausted after
  // each step). Monotone and resumable.
  Result<ChaseOutcome> ExpandToLevel(uint32_t level);
  Result<ChaseOutcome> Run() { return ExpandToLevel(limits_.max_level); }

  const std::vector<ChaseConjunct>& conjuncts() const { return conjuncts_; }
  std::vector<Fact> AliveFacts() const;
  const std::vector<Term>& summary() const { return summary_; }
  ChaseOutcome outcome() const { return outcome_; }
  uint32_t MaxAliveLevel() const;
  Instance AsInstance() const;
  std::string ToString() const;

 private:
  Status RunFdPhase();
  // One required EMVD application below `level`; deterministic selection:
  // minimum (pair level, first fact, second fact, emvd index).
  Result<bool> OneEmvdStep(uint32_t level);
  bool HasPendingWork(uint32_t level) const;

  const Catalog* catalog_;
  SymbolTable* symbols_;
  const DependencySet* fds_;
  const std::vector<EmbeddedMvd>* emvds_;
  ChaseLimits limits_;

  std::vector<ChaseConjunct> conjuncts_;
  std::vector<Term> summary_;
  // (emvd index, id1, id2) triples already considered.
  std::set<std::tuple<uint32_t, uint64_t, uint64_t>> considered_;
  ChaseOutcome outcome_ = ChaseOutcome::kTruncated;
  bool initialized_ = false;
  uint64_t next_id_ = 0;
  size_t steps_ = 0;
};

// Sound semi-decision of Σ ⊨ Q ⊆∞ Q' for Σ = FDs ∪ EMVDs (see header
// comment). `fds` must contain FDs only.
Result<ContainmentReport> CheckContainmentEmvd(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
    const DependencySet& fds, const std::vector<EmbeddedMvd>& emvds,
    SymbolTable& symbols, const ContainmentOptions& options = {});

}  // namespace cqchase

#endif  // CQCHASE_EMVD_EMVD_CHASE_H_
