// Embedded multivalued dependencies — the extension Section 5 of the paper
// proposes as a direction for further work ("Chases involving EMVDs also
// introduce new symbols and so do not terminate. Which sets of EMVDs give
// rise to containment problems that are 'only' as hard as NP?").
//
// An EMVD is written  R: X ->> Y | Z  with X, Y, Z disjoint column lists of
// R. A database obeys it if, whenever two R-tuples agree on X, there is an
// R-tuple agreeing with the first on X∪Y and with the second on Z (the
// projection of R onto X∪Y∪Z satisfies the multivalued dependency X ->> Y).
// When X∪Y∪Z covers all of R's columns this is a plain MVD; "embedded"
// allows a proper subset, and it is the embedded case whose chase needs
// fresh symbols (the uncovered columns of the witness are unconstrained).
#ifndef CQCHASE_EMVD_EMVD_H_
#define CQCHASE_EMVD_EMVD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "data/instance.h"
#include "schema/catalog.h"

namespace cqchase {

struct EmbeddedMvd {
  RelationId relation = 0;
  std::vector<uint32_t> x_columns;  // the agreeing prefix
  std::vector<uint32_t> y_columns;  // inherited from the first tuple
  std::vector<uint32_t> z_columns;  // inherited from the second tuple

  // True when X∪Y∪Z covers every column of `relation` in `catalog` — the
  // classical (non-embedded) MVD case, whose chase needs no fresh symbols.
  bool IsFullMvd(const Catalog& catalog) const;

  // Renders e.g. "R: a ->> b | c".
  std::string ToString(const Catalog& catalog) const;

  friend bool operator==(const EmbeddedMvd& a, const EmbeddedMvd& b) {
    return a.relation == b.relation && a.x_columns == b.x_columns &&
           a.y_columns == b.y_columns && a.z_columns == b.z_columns;
  }
};

// Column indices in range, sides pairwise disjoint and duplicate-free, Y and
// Z non-empty (X may be empty: the "degenerate" EMVD relating any two rows).
Status ValidateEmvd(const EmbeddedMvd& emvd, const Catalog& catalog);

// Parses "R: X ->> Y | Z" where each side is a comma-separated list of
// attribute names or 1-based positions, e.g. "R: a ->> b | c" or
// "R: 1,2 ->> 3 | 4".
Result<EmbeddedMvd> ParseEmvd(const Catalog& catalog, std::string_view text);

// Satisfaction on finite instances (Section 2-style definition above).
bool SatisfiesEmvd(const Instance& instance, const EmbeddedMvd& emvd);

}  // namespace cqchase

#endif  // CQCHASE_EMVD_EMVD_H_
