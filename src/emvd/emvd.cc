#include "emvd/emvd.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "base/string_util.h"

namespace cqchase {

bool EmbeddedMvd::IsFullMvd(const Catalog& catalog) const {
  return x_columns.size() + y_columns.size() + z_columns.size() ==
         catalog.arity(relation);
}

std::string EmbeddedMvd::ToString(const Catalog& catalog) const {
  const RelationSchema& r = catalog.relation(relation);
  auto names = [&](const std::vector<uint32_t>& cols) {
    return StrJoinMapped(cols, ",",
                         [&](uint32_t c) { return r.attribute(c); });
  };
  return StrCat(r.name(), ": ", names(x_columns), " ->> ", names(y_columns),
                " | ", names(z_columns));
}

Status ValidateEmvd(const EmbeddedMvd& emvd, const Catalog& catalog) {
  if (emvd.relation >= catalog.num_relations()) {
    return Status::InvalidArgument("EMVD references unknown relation");
  }
  const size_t arity = catalog.arity(emvd.relation);
  if (emvd.y_columns.empty() || emvd.z_columns.empty()) {
    return Status::InvalidArgument("EMVD Y and Z sides must be non-empty");
  }
  std::set<uint32_t> seen;
  for (const std::vector<uint32_t>* side :
       {&emvd.x_columns, &emvd.y_columns, &emvd.z_columns}) {
    for (uint32_t c : *side) {
      if (c >= arity) {
        return Status::InvalidArgument(
            StrCat("EMVD column ", c, " out of range for relation '",
                   catalog.relation(emvd.relation).name(), "'"));
      }
      if (!seen.insert(c).second) {
        return Status::InvalidArgument(
            "EMVD sides must be pairwise disjoint and duplicate-free");
      }
    }
  }
  return Status::OK();
}

namespace {

Result<std::vector<uint32_t>> ResolveCols(const Catalog& catalog,
                                          RelationId rel,
                                          std::string_view list) {
  std::vector<uint32_t> out;
  std::string token;
  auto flush = [&]() -> Status {
    if (token.empty()) return Status::OK();
    const RelationSchema& schema = catalog.relation(rel);
    std::optional<uint32_t> byname = schema.AttributeIndex(token);
    if (byname.has_value()) {
      out.push_back(*byname);
    } else {
      bool numeric = !token.empty();
      for (char c : token) {
        if (!std::isdigit(static_cast<unsigned char>(c))) numeric = false;
      }
      if (!numeric) {
        return Status::InvalidArgument(
            StrCat("unknown attribute '", token, "' of relation '",
                   schema.name(), "'"));
      }
      const unsigned long pos = std::stoul(token);
      if (pos == 0 || pos > schema.arity()) {
        return Status::InvalidArgument(
            StrCat("column position ", pos, " out of range"));
      }
      out.push_back(static_cast<uint32_t>(pos - 1));
    }
    token.clear();
    return Status::OK();
  };
  for (char c : list) {
    if (c == ',' || std::isspace(static_cast<unsigned char>(c))) {
      CQCHASE_RETURN_IF_ERROR(flush());
    } else {
      token.push_back(c);
    }
  }
  CQCHASE_RETURN_IF_ERROR(flush());
  return out;
}

}  // namespace

Result<EmbeddedMvd> ParseEmvd(const Catalog& catalog, std::string_view text) {
  const size_t colon = text.find(':');
  if (colon == std::string_view::npos) {
    return Status::InvalidArgument("EMVD must look like 'R: X ->> Y | Z'");
  }
  std::string rel_name;
  for (char c : text.substr(0, colon)) {
    if (!std::isspace(static_cast<unsigned char>(c))) rel_name.push_back(c);
  }
  std::optional<RelationId> rel = catalog.FindRelation(rel_name);
  if (!rel.has_value()) {
    return Status::InvalidArgument(
        StrCat("unknown relation '", rel_name, "'"));
  }
  std::string_view rest = text.substr(colon + 1);
  const size_t arrow = rest.find("->>");
  if (arrow == std::string_view::npos) {
    return Status::InvalidArgument("EMVD is missing '->>'");
  }
  std::string_view after = rest.substr(arrow + 3);
  const size_t bar = after.find('|');
  if (bar == std::string_view::npos) {
    return Status::InvalidArgument(
        "EMVD is missing the '| Z' side (for a full MVD list the "
        "complement explicitly)");
  }
  EmbeddedMvd emvd;
  emvd.relation = *rel;
  CQCHASE_ASSIGN_OR_RETURN(emvd.x_columns,
                           ResolveCols(catalog, *rel, rest.substr(0, arrow)));
  CQCHASE_ASSIGN_OR_RETURN(emvd.y_columns,
                           ResolveCols(catalog, *rel, after.substr(0, bar)));
  CQCHASE_ASSIGN_OR_RETURN(emvd.z_columns,
                           ResolveCols(catalog, *rel, after.substr(bar + 1)));
  CQCHASE_RETURN_IF_ERROR(ValidateEmvd(emvd, catalog));
  return emvd;
}

bool SatisfiesEmvd(const Instance& instance, const EmbeddedMvd& emvd) {
  const auto& tuples = instance.tuples(emvd.relation);
  auto project = [](const std::vector<Term>& row,
                    const std::vector<uint32_t>& cols) {
    std::vector<Term> out;
    out.reserve(cols.size());
    for (uint32_t c : cols) out.push_back(row[c]);
    return out;
  };
  for (const auto& t1 : tuples) {
    for (const auto& t2 : tuples) {
      if (project(t1, emvd.x_columns) != project(t2, emvd.x_columns)) {
        continue;
      }
      bool witness = false;
      for (const auto& w : tuples) {
        if (project(w, emvd.x_columns) == project(t1, emvd.x_columns) &&
            project(w, emvd.y_columns) == project(t1, emvd.y_columns) &&
            project(w, emvd.z_columns) == project(t2, emvd.z_columns)) {
          witness = true;
          break;
        }
      }
      if (!witness) return false;
    }
  }
  return true;
}

}  // namespace cqchase
