#include "emvd/emvd_chase.h"

#include <algorithm>
#include <limits>
#include <map>

#include "base/string_util.h"

namespace cqchase {

EmvdChase::EmvdChase(const Catalog* catalog, SymbolTable* symbols,
                     const DependencySet* fds,
                     const std::vector<EmbeddedMvd>* emvds, ChaseLimits limits)
    : catalog_(catalog),
      symbols_(symbols),
      fds_(fds),
      emvds_(emvds),
      limits_(limits) {}

Status EmvdChase::Init(const ConjunctiveQuery& query) {
  if (initialized_) {
    return Status::FailedPrecondition("EmvdChase::Init called twice");
  }
  initialized_ = true;
  if (!fds_->ContainsOnlyFds()) {
    return Status::FailedPrecondition(
        "EmvdChase takes INDs nowhere: pass FDs only");
  }
  CQCHASE_RETURN_IF_ERROR(query.Validate());
  for (const EmbeddedMvd& emvd : *emvds_) {
    CQCHASE_RETURN_IF_ERROR(ValidateEmvd(emvd, *catalog_));
  }
  if (query.is_empty_query()) {
    outcome_ = ChaseOutcome::kEmptyQuery;
    summary_ = query.summary();
    return Status::OK();
  }
  for (const Fact& f : query.conjuncts()) {
    conjuncts_.push_back(ChaseConjunct{next_id_++, f, 0, true, std::nullopt,
                                       std::nullopt});
  }
  summary_ = query.summary();
  return RunFdPhase();
}

Status EmvdChase::RunFdPhase() {
  if (fds_->fds().empty()) return Status::OK();
  while (outcome_ != ChaseOutcome::kEmptyQuery) {
    bool applied = false;
    for (const FunctionalDependency& fd : fds_->fds()) {
      std::map<std::vector<Term>, size_t> by_lhs;
      std::vector<size_t> order;
      for (size_t i = 0; i < conjuncts_.size(); ++i) {
        if (conjuncts_[i].alive && conjuncts_[i].fact.relation == fd.relation) {
          order.push_back(i);
        }
      }
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (conjuncts_[a].fact != conjuncts_[b].fact) {
          return conjuncts_[a].fact < conjuncts_[b].fact;
        }
        return conjuncts_[a].id < conjuncts_[b].id;
      });
      for (size_t i : order) {
        std::vector<Term> key;
        for (uint32_t c : fd.lhs) key.push_back(conjuncts_[i].fact.terms[c]);
        auto [it, inserted] = by_lhs.emplace(std::move(key), i);
        if (inserted) continue;
        Term u = conjuncts_[it->second].fact.terms[fd.rhs];
        Term v = conjuncts_[i].fact.terms[fd.rhs];
        if (u == v) continue;
        ++steps_;
        if (steps_ > limits_.max_steps) {
          return Status::ResourceExhausted(
              StrCat("EMVD chase exceeded max_steps=", limits_.max_steps));
        }
        if (u.is_constant() && v.is_constant()) {
          for (ChaseConjunct& c : conjuncts_) c.alive = false;
          outcome_ = ChaseOutcome::kEmptyQuery;
          return Status::OK();
        }
        Term winner = std::min(u, v);
        Term loser = std::max(u, v);
        for (ChaseConjunct& c : conjuncts_) {
          if (!c.alive) continue;
          for (Term& t : c.fact.terms) {
            if (t == loser) t = winner;
          }
        }
        for (Term& t : summary_) {
          if (t == loser) t = winner;
        }
        // Dedupe identical facts (min level, min id survive).
        std::map<Fact, size_t> first;
        for (size_t j = 0; j < conjuncts_.size(); ++j) {
          ChaseConjunct& c = conjuncts_[j];
          if (!c.alive) continue;
          auto [fit, finserted] = first.emplace(c.fact, j);
          if (finserted) continue;
          ChaseConjunct& survivor = conjuncts_[fit->second];
          survivor.level = std::min(survivor.level, c.level);
          c.alive = false;
        }
        applied = true;
        break;
      }
      if (applied) break;
    }
    if (!applied) break;
  }
  return Status::OK();
}

Result<bool> EmvdChase::OneEmvdStep(uint32_t level) {
  if (emvds_->empty()) return false;
  // Candidate selection: deterministic scan order over (pair level, facts,
  // ids, emvd index). Quadratic in the prefix size — the EMVD chase has no
  // Lemma 5 analogue, so prefixes stay small by construction (limits).
  while (true) {
    struct Candidate {
      uint32_t pair_level;
      size_t i, j;
      uint32_t emvd;
    };
    std::optional<Candidate> best;
    auto better = [&](const Candidate& a, const Candidate& b) {
      auto key = [&](const Candidate& c) {
        return std::tuple(c.pair_level, conjuncts_[c.i].fact,
                          conjuncts_[c.j].fact, conjuncts_[c.i].id,
                          conjuncts_[c.j].id, c.emvd);
      };
      return key(a) < key(b);
    };
    for (size_t i = 0; i < conjuncts_.size(); ++i) {
      if (!conjuncts_[i].alive) continue;
      for (size_t j = 0; j < conjuncts_.size(); ++j) {
        if (!conjuncts_[j].alive) continue;
        const uint32_t pair_level =
            std::max(conjuncts_[i].level, conjuncts_[j].level);
        if (pair_level >= level) continue;
        for (uint32_t k = 0; k < emvds_->size(); ++k) {
          const EmbeddedMvd& emvd = (*emvds_)[k];
          if (conjuncts_[i].fact.relation != emvd.relation ||
              conjuncts_[j].fact.relation != emvd.relation) {
            continue;
          }
          if (considered_.count({k, conjuncts_[i].id, conjuncts_[j].id}) > 0) {
            continue;
          }
          bool x_match = true;
          for (uint32_t c : emvd.x_columns) {
            if (conjuncts_[i].fact.terms[c] != conjuncts_[j].fact.terms[c]) {
              x_match = false;
              break;
            }
          }
          if (!x_match) continue;
          Candidate cand{pair_level, i, j, k};
          if (!best.has_value() || better(cand, *best)) best = cand;
        }
      }
    }
    if (!best.has_value()) return false;

    ++steps_;
    if (steps_ > limits_.max_steps) {
      return Status::ResourceExhausted(
          StrCat("EMVD chase exceeded max_steps=", limits_.max_steps));
    }
    const EmbeddedMvd& emvd = (*emvds_)[best->emvd];
    const ChaseConjunct& c1 = conjuncts_[best->i];
    const ChaseConjunct& c2 = conjuncts_[best->j];
    considered_.emplace(best->emvd, c1.id, c2.id);

    // Required discipline: skip when a witness already carries (X, Y, Z).
    bool witness = false;
    for (const ChaseConjunct& w : conjuncts_) {
      if (!w.alive || w.fact.relation != emvd.relation) continue;
      bool match = true;
      for (uint32_t c : emvd.x_columns) {
        if (w.fact.terms[c] != c1.fact.terms[c]) match = false;
      }
      for (uint32_t c : emvd.y_columns) {
        if (w.fact.terms[c] != c1.fact.terms[c]) match = false;
      }
      for (uint32_t c : emvd.z_columns) {
        if (w.fact.terms[c] != c2.fact.terms[c]) match = false;
      }
      if (match) {
        witness = true;
        break;
      }
    }
    if (witness) continue;  // consumed this candidate, pick the next

    if (conjuncts_.size() >= limits_.max_conjuncts) {
      return Status::ResourceExhausted(
          StrCat("EMVD chase exceeded max_conjuncts=", limits_.max_conjuncts));
    }
    Fact created;
    created.relation = emvd.relation;
    created.terms.resize(catalog_->arity(emvd.relation));
    for (uint32_t c : emvd.x_columns) created.terms[c] = c1.fact.terms[c];
    for (uint32_t c : emvd.y_columns) created.terms[c] = c1.fact.terms[c];
    for (uint32_t c : emvd.z_columns) created.terms[c] = c2.fact.terms[c];
    const uint32_t new_level = best->pair_level + 1;
    for (uint32_t col = 0; col < created.terms.size(); ++col) {
      if (!created.terms[col].is_valid()) {
        created.terms[col] = symbols_->MakeChaseNdv(
            NdvProvenance{col, c1.id, best->emvd, new_level});
      }
    }
    conjuncts_.push_back(ChaseConjunct{next_id_++, std::move(created),
                                       new_level, true, c1.id,
                                       std::nullopt});
    return true;
  }
}

bool EmvdChase::HasPendingWork(uint32_t level) const {
  for (size_t i = 0; i < conjuncts_.size(); ++i) {
    if (!conjuncts_[i].alive) continue;
    for (size_t j = 0; j < conjuncts_.size(); ++j) {
      if (!conjuncts_[j].alive) continue;
      if (std::max(conjuncts_[i].level, conjuncts_[j].level) >= level) {
        continue;
      }
      for (uint32_t k = 0; k < emvds_->size(); ++k) {
        const EmbeddedMvd& emvd = (*emvds_)[k];
        if (conjuncts_[i].fact.relation != emvd.relation ||
            conjuncts_[j].fact.relation != emvd.relation) {
          continue;
        }
        if (considered_.count({k, conjuncts_[i].id, conjuncts_[j].id}) > 0) {
          continue;
        }
        bool x_match = true;
        for (uint32_t c : emvd.x_columns) {
          if (conjuncts_[i].fact.terms[c] != conjuncts_[j].fact.terms[c]) {
            x_match = false;
          }
        }
        if (x_match) return true;
      }
    }
  }
  return false;
}

Result<ChaseOutcome> EmvdChase::ExpandToLevel(uint32_t level) {
  if (!initialized_) {
    return Status::FailedPrecondition("EmvdChase::Init not called");
  }
  if (outcome_ == ChaseOutcome::kEmptyQuery) return outcome_;
  const uint32_t effective = std::min(level, limits_.max_level);
  while (true) {
    CQCHASE_RETURN_IF_ERROR(RunFdPhase());
    if (outcome_ == ChaseOutcome::kEmptyQuery) return outcome_;
    CQCHASE_ASSIGN_OR_RETURN(bool stepped, OneEmvdStep(effective));
    if (!stepped) break;
  }
  outcome_ = HasPendingWork(std::numeric_limits<uint32_t>::max())
                 ? ChaseOutcome::kTruncated
                 : ChaseOutcome::kSaturated;
  return outcome_;
}

std::vector<Fact> EmvdChase::AliveFacts() const {
  std::vector<Fact> out;
  for (const ChaseConjunct& c : conjuncts_) {
    if (c.alive) out.push_back(c.fact);
  }
  return out;
}

uint32_t EmvdChase::MaxAliveLevel() const {
  uint32_t m = 0;
  for (const ChaseConjunct& c : conjuncts_) {
    if (c.alive) m = std::max(m, c.level);
  }
  return m;
}

Instance EmvdChase::AsInstance() const {
  Instance out(catalog_);
  for (const ChaseConjunct& c : conjuncts_) {
    if (c.alive) (void)out.AddFact(c.fact);
  }
  return out;
}

std::string EmvdChase::ToString() const {
  std::string out;
  for (const ChaseConjunct& c : conjuncts_) {
    if (!c.alive) continue;
    out += StrCat("L", c.level, "  ", c.fact.ToString(*catalog_, *symbols_),
                  "\n");
  }
  return out;
}

Result<ContainmentReport> CheckContainmentEmvd(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
    const DependencySet& fds, const std::vector<EmbeddedMvd>& emvds,
    SymbolTable& symbols, const ContainmentOptions& options) {
  CQCHASE_RETURN_IF_ERROR(q.Validate());
  CQCHASE_RETURN_IF_ERROR(q_prime.Validate());
  if (q.summary().size() != q_prime.summary().size()) {
    return Status::InvalidArgument(
        "queries must have the same output arity for containment");
  }
  ContainmentReport report;
  report.level_bound = 0;  // no Lemma 5 analogue: semi-decision only

  EmvdChase chase(&q.catalog(), &symbols, &fds, &emvds, options.limits);
  CQCHASE_RETURN_IF_ERROR(chase.Init(q));
  for (uint32_t level = 0;; ++level) {
    CQCHASE_ASSIGN_OR_RETURN(ChaseOutcome outcome, chase.ExpandToLevel(level));
    report.chase_outcome = outcome;
    report.chase_conjuncts = chase.AliveFacts().size();
    report.chase_levels = chase.MaxAliveLevel();
    if (outcome == ChaseOutcome::kEmptyQuery) {
      report.contained = true;
      return report;
    }
    if (!q_prime.is_empty_query()) {
      std::optional<Homomorphism> hom =
          FindHomomorphism(q_prime, chase.AliveFacts(), chase.summary());
      if (hom.has_value()) {
        report.contained = true;
        report.witness = std::move(hom);
        report.witness_max_level = chase.MaxAliveLevel();
        return report;
      }
    }
    if (outcome == ChaseOutcome::kSaturated) {
      report.contained = false;
      return report;
    }
    if (level >= options.limits.max_level) {
      return Status::ResourceExhausted(
          StrCat("EMVD containment undecided at chase level ", level,
                 " (no level bound exists for EMVDs — open problem in the "
                 "paper's Section 5)"));
    }
  }
}

}  // namespace cqchase
