// Instance: a finite database over a Catalog. Rows are Facts whose terms are
// usually constants, but any Term is allowed — the paper's key device is to
// read a (partial) chase, whose rows contain variables, as a database in
// which each variable is a fresh constant. Satisfaction and evaluation here
// treat every term purely as a value, which implements exactly that reading.
#ifndef CQCHASE_DATA_INSTANCE_H_
#define CQCHASE_DATA_INSTANCE_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "base/status.h"
#include "cq/fact.h"
#include "cq/query.h"
#include "deps/dependency_set.h"
#include "schema/catalog.h"

namespace cqchase {

class Instance {
 public:
  explicit Instance(const Catalog* catalog) : catalog_(catalog) {
    tuples_by_relation_.resize(catalog->num_relations());
  }

  const Catalog& catalog() const { return *catalog_; }

  // Inserts a tuple; duplicate tuples are ignored (relations are sets).
  // Fails on arity mismatch or unknown relation.
  Status AddTuple(RelationId relation, std::vector<Term> terms);
  Status AddFact(const Fact& fact) {
    return AddTuple(fact.relation, fact.terms);
  }

  // Removes a tuple if present; returns whether it was present.
  bool RemoveTuple(RelationId relation, const std::vector<Term>& terms);

  const std::vector<std::vector<Term>>& tuples(RelationId relation) const {
    return tuples_by_relation_[relation];
  }

  bool Contains(RelationId relation, const std::vector<Term>& terms) const;

  size_t TotalTuples() const;
  bool empty() const { return TotalTuples() == 0; }

  // --- Dependency satisfaction (Section 2 definitions) -------------------

  // True iff no two tuples of fd.relation agree on fd.lhs but differ on
  // fd.rhs.
  bool Satisfies(const FunctionalDependency& fd) const;

  // True iff for every tuple t of ind.lhs_relation there is a tuple u of
  // ind.rhs_relation with u[Y] = t[X].
  bool Satisfies(const InclusionDependency& ind) const;

  bool Satisfies(const DependencySet& deps) const;

  // Human-readable list of violated dependencies (for diagnostics/tests).
  std::vector<std::string> Violations(const DependencySet& deps,
                                      const SymbolTable& symbols) const;

  // --- Query evaluation ----------------------------------------------------
  // Q(B): the set of images of Q's summary row under all homomorphisms from
  // Q to this instance (constants fixed). Result rows are sorted and
  // distinct. An empty-marked query evaluates to the empty relation.
  std::vector<std::vector<Term>> Eval(const ConjunctiveQuery& query) const;

  // True iff Eval(q)(this) ⊆ Eval(q2)(this) — a single-database containment
  // check, the building block of finite-containment sampling.
  bool EvalContained(const ConjunctiveQuery& q, const ConjunctiveQuery& q2) const;

  std::string ToString(const SymbolTable& symbols) const;

 private:
  const Catalog* catalog_;
  std::vector<std::vector<std::vector<Term>>> tuples_by_relation_;
  std::unordered_set<Fact> tuple_set_;
};

// Repairs `instance` toward satisfying `deps`, mimicking a finite chase of a
// database:
//  * FD violation between two rows: the row added later is deleted (a repair
//    policy, not the chase's merge — instances hold constants, which the FD
//    chase rule cannot merge);
//  * IND violation: a witness row is added, filling non-Y columns with fresh
//    constants interned into `symbols`.
// Iterates to a fixpoint; returns kResourceExhausted if `max_added_tuples`
// new rows do not suffice (the finite chase can diverge — that divergence is
// the subject of Section 4 of the paper).
Status RepairToSatisfy(const DependencySet& deps, SymbolTable& symbols,
                       size_t max_added_tuples, Instance& instance);

}  // namespace cqchase

#endif  // CQCHASE_DATA_INSTANCE_H_
