#include "data/instance.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "base/string_util.h"

namespace cqchase {

Status Instance::AddTuple(RelationId relation, std::vector<Term> terms) {
  if (relation >= catalog_->num_relations()) {
    return Status::InvalidArgument("unknown relation");
  }
  if (terms.size() != catalog_->arity(relation)) {
    return Status::InvalidArgument(
        StrCat("arity mismatch inserting into '",
               catalog_->relation(relation).name(), "': got ", terms.size(),
               ", want ", catalog_->arity(relation)));
  }
  Fact fact{relation, terms};
  if (tuple_set_.insert(fact).second) {
    tuples_by_relation_[relation].push_back(std::move(terms));
  }
  return Status::OK();
}

bool Instance::RemoveTuple(RelationId relation,
                           const std::vector<Term>& terms) {
  Fact fact{relation, terms};
  if (tuple_set_.erase(fact) == 0) return false;
  auto& rows = tuples_by_relation_[relation];
  rows.erase(std::find(rows.begin(), rows.end(), terms));
  return true;
}

bool Instance::Contains(RelationId relation,
                        const std::vector<Term>& terms) const {
  return tuple_set_.count(Fact{relation, terms}) > 0;
}

size_t Instance::TotalTuples() const { return tuple_set_.size(); }

bool Instance::Satisfies(const FunctionalDependency& fd) const {
  // Group rows by their lhs projection; all rows in a group must agree on rhs.
  std::unordered_map<size_t, std::vector<const std::vector<Term>*>> groups;
  for (const auto& row : tuples_by_relation_[fd.relation]) {
    size_t h = 0x811c9dc5;
    for (uint32_t c : fd.lhs) h = HashCombine(h, row[c].hash());
    auto& bucket = groups[h];
    for (const auto* other : bucket) {
      bool same_lhs = true;
      for (uint32_t c : fd.lhs) {
        if ((*other)[c] != row[c]) {
          same_lhs = false;
          break;
        }
      }
      if (same_lhs && (*other)[fd.rhs] != row[fd.rhs]) return false;
    }
    bucket.push_back(&row);
  }
  return true;
}

bool Instance::Satisfies(const InclusionDependency& ind) const {
  // Index rhs projections, then probe with each lhs projection.
  std::unordered_set<size_t> rhs_proj_hashes;
  std::vector<std::vector<Term>> rhs_projections;
  for (const auto& row : tuples_by_relation_[ind.rhs_relation]) {
    std::vector<Term> proj;
    proj.reserve(ind.rhs_columns.size());
    for (uint32_t c : ind.rhs_columns) proj.push_back(row[c]);
    rhs_projections.push_back(std::move(proj));
  }
  std::sort(rhs_projections.begin(), rhs_projections.end());
  for (const auto& row : tuples_by_relation_[ind.lhs_relation]) {
    std::vector<Term> proj;
    proj.reserve(ind.lhs_columns.size());
    for (uint32_t c : ind.lhs_columns) proj.push_back(row[c]);
    if (!std::binary_search(rhs_projections.begin(), rhs_projections.end(),
                            proj)) {
      return false;
    }
  }
  return true;
}

bool Instance::Satisfies(const DependencySet& deps) const {
  for (const auto& fd : deps.fds()) {
    if (!Satisfies(fd)) return false;
  }
  for (const auto& ind : deps.inds()) {
    if (!Satisfies(ind)) return false;
  }
  return true;
}

std::vector<std::string> Instance::Violations(const DependencySet& deps,
                                              const SymbolTable&) const {
  std::vector<std::string> out;
  for (const auto& fd : deps.fds()) {
    if (!Satisfies(fd)) out.push_back(fd.ToString(*catalog_));
  }
  for (const auto& ind : deps.inds()) {
    if (!Satisfies(ind)) out.push_back(ind.ToString(*catalog_));
  }
  return out;
}

namespace {

// Backtracking evaluator: enumerates homomorphisms from `query` into the
// instance and collects the images of the summary row.
class Evaluator {
 public:
  Evaluator(const ConjunctiveQuery& query, const Instance& instance)
      : query_(query), instance_(instance) {}

  std::vector<std::vector<Term>> Run() {
    if (query_.is_empty_query()) return {};
    Search(0);
    std::sort(results_.begin(), results_.end());
    results_.erase(std::unique(results_.begin(), results_.end()),
                   results_.end());
    return std::move(results_);
  }

 private:
  void Search(size_t conjunct_index) {
    if (conjunct_index == query_.conjuncts().size()) {
      std::vector<Term> row;
      row.reserve(query_.summary().size());
      for (Term t : query_.summary()) row.push_back(Image(t));
      results_.push_back(std::move(row));
      return;
    }
    const Fact& conjunct = query_.conjuncts()[conjunct_index];
    for (const auto& row : instance_.tuples(conjunct.relation)) {
      std::vector<Term> newly_bound;
      if (TryBind(conjunct.terms, row, newly_bound)) {
        Search(conjunct_index + 1);
      }
      for (Term t : newly_bound) binding_.erase(t);
    }
  }

  Term Image(Term t) const {
    if (t.is_constant()) return t;
    auto it = binding_.find(t);
    assert(it != binding_.end() && "summary variable unbound (unsafe query)");
    return it->second;
  }

  // Attempts to extend the current binding so that the conjunct's terms map
  // pointwise onto `row`. Constants must match themselves.
  bool TryBind(const std::vector<Term>& pattern, const std::vector<Term>& row,
               std::vector<Term>& newly_bound) {
    for (size_t i = 0; i < pattern.size(); ++i) {
      Term p = pattern[i];
      if (p.is_constant()) {
        if (p != row[i]) return false;
        continue;
      }
      auto it = binding_.find(p);
      if (it != binding_.end()) {
        if (it->second != row[i]) return false;
      } else {
        binding_.emplace(p, row[i]);
        newly_bound.push_back(p);
      }
    }
    return true;
  }

  const ConjunctiveQuery& query_;
  const Instance& instance_;
  std::unordered_map<Term, Term> binding_;
  std::vector<std::vector<Term>> results_;
};

}  // namespace

std::vector<std::vector<Term>> Instance::Eval(
    const ConjunctiveQuery& query) const {
  return Evaluator(query, *this).Run();
}

bool Instance::EvalContained(const ConjunctiveQuery& q,
                             const ConjunctiveQuery& q2) const {
  std::vector<std::vector<Term>> a = Eval(q);
  std::vector<std::vector<Term>> b = Eval(q2);
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

std::string Instance::ToString(const SymbolTable& symbols) const {
  std::string out;
  for (RelationId r = 0; r < catalog_->num_relations(); ++r) {
    // Sort by rendered text, not by term ids, so the listing is stable under
    // different interning orders.
    std::vector<std::string> rows;
    rows.reserve(tuples_by_relation_[r].size());
    for (const auto& row : tuples_by_relation_[r]) {
      rows.push_back(TermsToString(row, symbols));
    }
    std::sort(rows.begin(), rows.end());
    for (const std::string& row : rows) {
      out += StrCat(catalog_->relation(r).name(), row, "\n");
    }
  }
  return out;
}

Status RepairToSatisfy(const DependencySet& deps, SymbolTable& symbols,
                       size_t max_added_tuples, Instance& instance) {
  size_t added = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    // FD repair: delete the lexicographically larger of a violating pair.
    for (const auto& fd : deps.fds()) {
      while (!instance.Satisfies(fd)) {
        const auto& rows = instance.tuples(fd.relation);
        bool repaired = false;
        for (size_t i = 0; i < rows.size() && !repaired; ++i) {
          for (size_t j = i + 1; j < rows.size() && !repaired; ++j) {
            bool same_lhs = true;
            for (uint32_t c : fd.lhs) {
              if (rows[i][c] != rows[j][c]) {
                same_lhs = false;
                break;
              }
            }
            if (same_lhs && rows[i][fd.rhs] != rows[j][fd.rhs]) {
              std::vector<Term> victim =
                  std::max(rows[i], rows[j]);  // deterministic choice
              instance.RemoveTuple(fd.relation, victim);
              changed = true;
              repaired = true;
            }
          }
        }
        if (!repaired) break;
      }
    }
    // IND repair: add witness rows with fresh constants outside Y.
    for (const auto& ind : deps.inds()) {
      // Snapshot, since we add rows while iterating.
      std::vector<std::vector<Term>> lhs_rows =
          instance.tuples(ind.lhs_relation);
      for (const auto& row : lhs_rows) {
        std::vector<Term> proj;
        for (uint32_t c : ind.lhs_columns) proj.push_back(row[c]);
        bool found = false;
        for (const auto& rhs_row : instance.tuples(ind.rhs_relation)) {
          bool match = true;
          for (size_t k = 0; k < ind.rhs_columns.size(); ++k) {
            if (rhs_row[ind.rhs_columns[k]] != proj[k]) {
              match = false;
              break;
            }
          }
          if (match) {
            found = true;
            break;
          }
        }
        if (found) continue;
        if (added >= max_added_tuples) {
          return Status::ResourceExhausted(
              StrCat("IND repair did not converge within ", max_added_tuples,
                     " added tuples"));
        }
        std::vector<Term> fresh(instance.catalog().arity(ind.rhs_relation));
        for (size_t i = 0; i < fresh.size(); ++i) {
          fresh[i] = symbols.MakeFreshConstant("null");
        }
        for (size_t k = 0; k < ind.rhs_columns.size(); ++k) {
          fresh[ind.rhs_columns[k]] = proj[k];
        }
        CQCHASE_RETURN_IF_ERROR(
            instance.AddTuple(ind.rhs_relation, std::move(fresh)));
        ++added;
        changed = true;
      }
    }
  }
  return Status::OK();
}

}  // namespace cqchase
