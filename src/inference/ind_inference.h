// IND implication — the problem Corollary 2.3 reduces from.
//
// Two independent deciders are provided:
//
//  1. IndImpliedAxiomatic: forward search over the Casanova–Fagin–
//     Papadimitriou proof system (reflexivity; projection-and-permutation;
//     transitivity), which is sound and complete for IND-only sets, where
//     finite and unrestricted implication coincide. Derivations are
//     normalized to "project each given IND, then chain by transitivity",
//     so the search is a BFS over (relation, column-sequence) nodes of the
//     target's width — polynomial for fixed width, per the paper's remark
//     after Corollary 2.3.
//
//  2. IndImpliedViaContainment: the paper's reduction (proof of Cor. 2.3):
//     Σ ⊨ R[X] ⊆ S[Y] iff Σ ⊨ Q ⊆∞ Q', where Q projects X out of one
//     R-conjunct and Q' additionally requires an S-conjunct carrying the
//     same values in Y.
//
// Tests and benchmarks cross-validate the two.
#ifndef CQCHASE_INFERENCE_IND_INFERENCE_H_
#define CQCHASE_INFERENCE_IND_INFERENCE_H_

#include "core/containment.h"
#include "deps/dependency_set.h"

namespace cqchase {

struct IndInferenceLimits {
  // Cap on BFS states (nodes are (relation, column-sequence) pairs).
  size_t max_states = 1 << 20;
};

// Decides deps ⊨ ind by proof search. `deps` must contain only INDs
// (kFailedPrecondition otherwise).
Result<bool> IndImpliedAxiomatic(const DependencySet& deps,
                                 const Catalog& catalog,
                                 const InclusionDependency& ind,
                                 const IndInferenceLimits& limits = {});

// A derivation in the CFP proof system: starting from the target's
// left-hand side, applying the listed given INDs (indices into deps.inds())
// in order — each by projection-and-permutation followed by transitivity —
// reaches the target's right-hand side. An empty chain is reflexivity.
// This is the "short proof" the introduction of the paper promises an
// NP/PSPACE membership result makes possible.
struct IndDerivation {
  std::vector<uint32_t> ind_chain;

  // Renders the chain of intermediate INDs, e.g.
  //   R[a] <= S[x]   via S-projection of IND #0
  std::string ToString(const DependencySet& deps, const Catalog& catalog,
                       const InclusionDependency& target) const;
};

// Like IndImpliedAxiomatic, but returns the (breadth-first shortest)
// derivation when the implication holds, nullopt when it does not.
Result<std::optional<IndDerivation>> DeriveInd(
    const DependencySet& deps, const Catalog& catalog,
    const InclusionDependency& ind, const IndInferenceLimits& limits = {});

// Decides deps ⊨ ind by the Corollary 2.3 containment reduction. `deps` must
// contain only INDs. Builds the two queries of the reduction internally.
Result<bool> IndImpliedViaContainment(
    const DependencySet& deps, const Catalog& catalog,
    const InclusionDependency& ind,
    const ContainmentOptions& options = {});

}  // namespace cqchase

#endif  // CQCHASE_INFERENCE_IND_INFERENCE_H_
