#include "inference/ind_inference.h"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>

#include "base/string_util.h"
#include "cq/query.h"

namespace cqchase {

namespace {

// A BFS node: relation + ordered column sequence of the target's width.
// The node (R, X) stands for the derivable IND goal[lhs] ⊆ R[X].
using Node = std::pair<RelationId, std::vector<uint32_t>>;

// Applies one given IND to a node by projection-and-permutation followed by
// transitivity: if node = (R, X) and the given is R[A] ⊆ S[B], and every X_j
// occurs in A (IND sides are duplicate-free, so positions are unique), the
// successor is (S, (B at those positions)).
std::optional<Node> Follow(const Node& node, const InclusionDependency& ind) {
  if (node.first != ind.lhs_relation) return std::nullopt;
  std::vector<uint32_t> image;
  image.reserve(node.second.size());
  for (uint32_t col : node.second) {
    std::optional<size_t> pos;
    for (size_t i = 0; i < ind.lhs_columns.size(); ++i) {
      if (ind.lhs_columns[i] == col) {
        pos = i;
        break;
      }
    }
    if (!pos.has_value()) return std::nullopt;
    image.push_back(ind.rhs_columns[*pos]);
  }
  return Node{ind.rhs_relation, std::move(image)};
}

}  // namespace

std::string IndDerivation::ToString(const DependencySet& deps,
                                    const Catalog& catalog,
                                    const InclusionDependency& target) const {
  Node node{target.lhs_relation, target.lhs_columns};
  InclusionDependency so_far;
  so_far.lhs_relation = target.lhs_relation;
  so_far.lhs_columns = target.lhs_columns;
  so_far.rhs_relation = node.first;
  so_far.rhs_columns = node.second;
  std::string out = StrCat(so_far.ToString(catalog), "   (reflexivity)\n");
  for (uint32_t k : ind_chain) {
    std::optional<Node> next = Follow(node, deps.inds()[k]);
    if (!next.has_value()) return out + "  <invalid derivation>\n";
    node = *next;
    so_far.rhs_relation = node.first;
    so_far.rhs_columns = node.second;
    out += StrCat(so_far.ToString(catalog),
                  "   (project/permute given IND #", k,
                  " = ", deps.inds()[k].ToString(catalog),
                  ", then transitivity)\n");
  }
  return out;
}

Result<std::optional<IndDerivation>> DeriveInd(
    const DependencySet& deps, const Catalog& catalog,
    const InclusionDependency& ind, const IndInferenceLimits& limits) {
  if (!deps.ContainsOnlyInds()) {
    return Status::FailedPrecondition(
        "DeriveInd requires an IND-only dependency set");
  }
  CQCHASE_RETURN_IF_ERROR(ValidateInd(ind, catalog));

  const Node start{ind.lhs_relation, ind.lhs_columns};
  const Node goal{ind.rhs_relation, ind.rhs_columns};
  if (start == goal) {
    return std::optional<IndDerivation>(IndDerivation{});  // reflexivity
  }

  // BFS recording, per visited node, which (predecessor, given-IND) reached
  // it first, so the shortest derivation can be read back.
  std::map<Node, std::pair<Node, uint32_t>> parent;
  std::deque<Node> frontier;
  parent.emplace(start, std::pair<Node, uint32_t>{start, 0});
  frontier.push_back(start);
  auto read_back = [&](Node node) {
    IndDerivation derivation;
    while (node != start) {
      const auto& [prev, k] = parent.at(node);
      derivation.ind_chain.push_back(k);
      node = prev;
    }
    std::reverse(derivation.ind_chain.begin(), derivation.ind_chain.end());
    return derivation;
  };
  while (!frontier.empty()) {
    Node node = std::move(frontier.front());
    frontier.pop_front();
    for (uint32_t k = 0; k < deps.inds().size(); ++k) {
      std::optional<Node> next = Follow(node, deps.inds()[k]);
      if (!next.has_value()) continue;
      if (parent.count(*next) > 0) continue;
      parent.emplace(*next, std::pair<Node, uint32_t>{node, k});
      if (*next == goal) {
        return std::optional<IndDerivation>(read_back(goal));
      }
      if (parent.size() > limits.max_states) {
        return Status::ResourceExhausted(
            StrCat("IND inference exceeded max_states=", limits.max_states));
      }
      frontier.push_back(std::move(*next));
    }
  }
  return std::optional<IndDerivation>();
}

Result<bool> IndImpliedAxiomatic(const DependencySet& deps,
                                 const Catalog& catalog,
                                 const InclusionDependency& ind,
                                 const IndInferenceLimits& limits) {
  CQCHASE_ASSIGN_OR_RETURN(std::optional<IndDerivation> derivation,
                           DeriveInd(deps, catalog, ind, limits));
  return derivation.has_value();
}

Result<bool> IndImpliedViaContainment(const DependencySet& deps,
                                      const Catalog& catalog,
                                      const InclusionDependency& ind,
                                      const ContainmentOptions& options) {
  if (!deps.ContainsOnlyInds()) {
    return Status::FailedPrecondition(
        "IndImpliedViaContainment requires an IND-only dependency set");
  }
  CQCHASE_RETURN_IF_ERROR(ValidateInd(ind, catalog));

  // The Corollary 2.3 construction (generalized to arbitrary column lists):
  //   Q  = {(x_1..x_w) : ∃ȳ  R(..x at X.., ȳ elsewhere)}
  //   Q' = {(x_1..x_w) : ∃ȳ,z̄  R(..x at X..) ∧ S(..x at Y.., z̄ elsewhere)}
  // Then deps ⊨ R[X] ⊆ S[Y]  iff  deps ⊨ Q ⊆∞ Q'.
  SymbolTable symbols;
  std::vector<Term> xs;
  xs.reserve(ind.width());
  for (size_t i = 0; i < ind.width(); ++i) {
    xs.push_back(symbols.InternDistVar(StrCat("x", i)));
  }

  Fact r_conjunct;
  r_conjunct.relation = ind.lhs_relation;
  r_conjunct.terms.resize(catalog.arity(ind.lhs_relation));
  for (size_t i = 0; i < ind.width(); ++i) {
    r_conjunct.terms[ind.lhs_columns[i]] = xs[i];
  }
  for (Term& t : r_conjunct.terms) {
    if (!t.is_valid()) t = symbols.MakeFreshNondistVar("y");
  }

  Fact s_conjunct;
  s_conjunct.relation = ind.rhs_relation;
  s_conjunct.terms.resize(catalog.arity(ind.rhs_relation));
  for (size_t i = 0; i < ind.width(); ++i) {
    s_conjunct.terms[ind.rhs_columns[i]] = xs[i];
  }
  for (Term& t : s_conjunct.terms) {
    if (!t.is_valid()) t = symbols.MakeFreshNondistVar("z");
  }

  ConjunctiveQuery q(&catalog, &symbols);
  q.AddConjunct(r_conjunct);
  q.SetSummary(xs);

  ConjunctiveQuery q_prime(&catalog, &symbols);
  q_prime.AddConjunct(r_conjunct);
  // Same-relation INDs can make the two conjuncts identical when X == Y;
  // the query remains valid because we only add a distinct S-conjunct.
  if (s_conjunct != r_conjunct) q_prime.AddConjunct(s_conjunct);
  q_prime.SetSummary(xs);

  CQCHASE_ASSIGN_OR_RETURN(
      ContainmentReport report,
      CheckContainment(q, q_prime, deps, symbols, options));
  return report.contained;
}

}  // namespace cqchase
