// FD implication via Armstrong attribute-set closure — the polynomial-time
// baseline the paper contrasts with IND inference (PSPACE-complete) and
// FD+IND inference (undecidable, Mitchell).
#ifndef CQCHASE_INFERENCE_FD_INFERENCE_H_
#define CQCHASE_INFERENCE_FD_INFERENCE_H_

#include <vector>

#include "deps/dependency_set.h"

namespace cqchase {

// The closure of `attributes` (column indices of `relation`) under the FDs
// of `deps` that concern `relation`. Sorted, duplicate-free.
std::vector<uint32_t> AttributeClosure(const DependencySet& deps,
                                       RelationId relation,
                                       std::vector<uint32_t> attributes);

// True iff deps ⊨ fd (for FDs this is the same for finite and unrestricted
// implication).
bool FdImplied(const DependencySet& deps, const FunctionalDependency& fd);

// True iff `key` (column indices) functionally determines every attribute of
// `relation` under the FDs of `deps`.
bool IsSuperkey(const DependencySet& deps, const Catalog& catalog,
                RelationId relation, const std::vector<uint32_t>& key);

}  // namespace cqchase

#endif  // CQCHASE_INFERENCE_FD_INFERENCE_H_
