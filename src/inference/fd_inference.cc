#include "inference/fd_inference.h"

#include <algorithm>

namespace cqchase {

std::vector<uint32_t> AttributeClosure(const DependencySet& deps,
                                       RelationId relation,
                                       std::vector<uint32_t> attributes) {
  std::sort(attributes.begin(), attributes.end());
  attributes.erase(std::unique(attributes.begin(), attributes.end()),
                   attributes.end());
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionalDependency& fd : deps.fds()) {
      if (fd.relation != relation) continue;
      if (std::binary_search(attributes.begin(), attributes.end(), fd.rhs)) {
        continue;
      }
      bool lhs_covered = std::all_of(
          fd.lhs.begin(), fd.lhs.end(), [&](uint32_t c) {
            return std::binary_search(attributes.begin(), attributes.end(), c);
          });
      if (lhs_covered) {
        attributes.insert(
            std::upper_bound(attributes.begin(), attributes.end(), fd.rhs),
            fd.rhs);
        changed = true;
      }
    }
  }
  return attributes;
}

bool FdImplied(const DependencySet& deps, const FunctionalDependency& fd) {
  std::vector<uint32_t> closure =
      AttributeClosure(deps, fd.relation, fd.lhs);
  return std::binary_search(closure.begin(), closure.end(), fd.rhs);
}

bool IsSuperkey(const DependencySet& deps, const Catalog& catalog,
                RelationId relation, const std::vector<uint32_t>& key) {
  std::vector<uint32_t> closure = AttributeClosure(deps, relation, key);
  return closure.size() == catalog.arity(relation);
}

}  // namespace cqchase
