#include "chase/segment.h"

#include <cassert>

namespace cqchase {

void ColumnSegment::AppendRow(const Fact& fact, uint64_t minted_id,
                              uint64_t source_id) {
  assert(fact.relation == relation);
  if (columns.empty()) columns.resize(fact.terms.size());
  assert(columns.size() == fact.terms.size());
  for (size_t c = 0; c < fact.terms.size(); ++c) {
    columns[c].push_back(fact.terms[c]);
  }
  minted_ids.push_back(minted_id);
  source_ids.push_back(source_id);
}

Fact ColumnSegment::RowFact(size_t r) const {
  Fact f;
  f.relation = relation;
  f.terms.reserve(columns.size());
  for (const std::vector<Term>& col : columns) f.terms.push_back(col[r]);
  return f;
}

std::optional<SegmentEdge> SegmentStore::EdgeOf(uint64_t id) const {
  if (id >= edge_of_id_.size() || edge_of_id_[id] == kNoEdge) {
    return std::nullopt;
  }
  const uint64_t packed = edge_of_id_[id];
  SegmentEdge edge;
  edge.segment = static_cast<uint32_t>(packed >> 32);
  edge.row = static_cast<uint32_t>(packed & 0xffffffffu);
  const ColumnSegment& seg = segments_[edge.segment];
  edge.source_id = seg.source_ids[edge.row];
  edge.ind_index = seg.ind_index;
  return edge;
}

void SegmentStore::Add(ColumnSegment segment) {
  if (segment.rows() == 0) return;
  const uint32_t seg_index = static_cast<uint32_t>(segments_.size());
  for (uint32_t r = 0; r < segment.rows(); ++r) {
    const uint64_t id = segment.minted_ids[r];
    if (id >= edge_of_id_.size()) edge_of_id_.resize(id + 1, kNoEdge);
    edge_of_id_[id] = (uint64_t{seg_index} << 32) | r;
  }
  total_rows_ += segment.rows();
  segments_.push_back(std::move(segment));
}

void ConsideredSet::Reset(size_t num_inds) {
  words_ = (num_inds + 63) / 64;
  bits_.clear();
}

bool ConsideredSet::Test(uint32_t ind, uint64_t id) const {
  const size_t word = id * words_ + ind / 64;
  if (word >= bits_.size()) return false;
  return (bits_[word] >> (ind % 64)) & 1;
}

void ConsideredSet::EnsureRow(uint64_t id) {
  const size_t need = (id + 1) * words_;
  if (bits_.size() < need) bits_.resize(need, 0);
}

void ConsideredSet::Set(uint32_t ind, uint64_t id) {
  EnsureRow(id);
  bits_[id * words_ + ind / 64] |= uint64_t{1} << (ind % 64);
}

void ConsideredSet::Inherit(uint64_t from, uint64_t to) {
  if ((from + 1) * words_ > bits_.size()) return;  // `from` row is all-zero
  EnsureRow(to);
  for (size_t w = 0; w < words_; ++w) {
    bits_[to * words_ + w] |= bits_[from * words_ + w];
  }
}

const uint64_t* ConsideredSet::Row(uint64_t id) const {
  if (words_ == 0 || (id + 1) * words_ > bits_.size()) return nullptr;
  return &bits_[id * words_];
}

}  // namespace cqchase
