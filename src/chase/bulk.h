// Working state of the set-at-a-time (bulk) chase core.
//
// The scalar core linearizes the paper's selection rule as a std::set of
// PendingStep entries — one ordered insert (with a Fact copy) per applicable
// (conjunct, IND) pair, ~|Σ| of them per minted conjunct. The bulk core
// exploits a structural fact about the IND chase: once the chase starts
// processing level L, the level-L frontier is fixed — every IND application
// mints at level L+1, and only an FD merge (which aborts the sweep) can
// change level-L facts. So instead of maintaining a pending set at all, it
// recomputes the frontier per level from two dense structures:
//
//  * applicable_mask: per-relation bitmask of INDs whose lhs is that
//    relation. AND-NOT against the conjunct's ConsideredSet row gives its
//    pending INDs in a few word ops.
//  * witness groups: one (projection -> witnesses) index per DISTINCT
//    (rhs_relation, rhs_columns) pair, shared by all INDs with that rhs —
//    wide Σ typically has far fewer distinct projections than INDs, so a
//    minted conjunct updates a handful of groups instead of |Σ| per-IND
//    witness maps.
//
// The sweep itself visits the frontier in (fact, id) order applying pending
// INDs ascending — exactly the scalar core's (level, fact, id, ind) order —
// and flushes one columnar ColumnSegment per (level, IND) into the chase's
// SegmentStore. See Chase::RunLevelBatch in bulk.cc for the equivalence
// argument, and tests/chase_core_parity_test.cc for the differential proof.
//
// The parallel core (ChaseCoreMode::kParallel, chase/parallel.cc) shares
// this state. Its id-reservation protocol: conjunct ids and NDV names are an
// observable contract (certificates, resumability, ToString parity), and the
// scalar id sequence interleaves INDs row-major across the frontier — so
// contiguous per-(level, IND) ranges cannot reproduce it. Instead the
// parallel sweep computes witness *decisions* concurrently (reads only),
// then a sequential planning pass assigns every pair the exact id the
// scalar core would, and only then does a sequential commit pass mint NDVs
// and append state. Reservation here means "the full planned id sequence is
// fixed before any observable mutation", not "a range per batch".
#ifndef CQCHASE_CHASE_BULK_H_
#define CQCHASE_CHASE_BULK_H_

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "cq/fact.h"
#include "schema/catalog.h"
#include "symbols/term.h"

namespace cqchase {

// Per-chase working state built by Chase::PrepareBulk from the immutable Σ.
// Rebuilt only when Σ-visible structure changes (never mid-chase); the
// witness indexes inside are additionally rebuilt whenever witness_dirty is
// set. Not thread-safe: the parallel core reads `groups` concurrently from
// witness-class tasks but guarantees writes happen only between barriers on
// the coordinating thread (chase/parallel.cc).
struct BulkState {
  // group_of_ind value for INDs pruned at PrepareBulk time: statically
  // unreachable from the initial relations per the Σ reliance analysis
  // (analysis/reliance.h), so they get no mask bit and no witness group.
  // Never dereferenced — a pruned IND's lhs relation never holds a fact, so
  // no sweep ever selects it.
  static constexpr uint32_t kPrunedGroup = ~uint32_t{0};

  // Per-relation bitmask over IND indices (ConsideredSet row layout): bit k
  // set iff inds()[k].lhs_relation is that relation AND the IND survived
  // reliance pruning. Empty vector = no applicable INDs for the relation.
  std::vector<std::vector<uint64_t>> applicable_mask;

  // One witness index per distinct (rhs_relation, rhs_columns). The inner
  // set is ordered (fact, id) so begin() is the paper's deterministic
  // witness — same invariant as the scalar witness_index_.
  struct WitnessGroup {
    RelationId relation = 0;
    std::vector<uint32_t> columns;
    std::map<std::vector<Term>, std::set<std::pair<Fact, uint64_t>>> index;
  };
  std::vector<WitnessGroup> groups;
  std::vector<uint32_t> group_of_ind;  // IND index -> groups index
  std::vector<std::vector<uint32_t>> groups_of_relation;

  // Per-IND: does the rhs have columns outside rhs_columns (fresh NDVs)?
  std::vector<bool> ind_has_fresh_columns;

  // Per-IND: reliance-component depth from SigmaGraph::frontiers()
  // (analysis/reliance.h), i.e. the longest acyclic component path feeding
  // the IND. Meaningless (zero) for pruned INDs. The parallel core launches
  // witness-class tasks depth-layer by depth-layer — depth is *scheduling*
  // structure only; correctness comes from witness-class disjointness
  // (chase/parallel.cc).
  std::vector<uint32_t> ind_depth;

  // Set by Chase::SubstituteTerm: an FD merge mutated facts, so the groups
  // (and any in-flight frontier) are stale. The current sweep aborts and the
  // next one rebuilds.
  bool witness_dirty = true;
};

}  // namespace cqchase

#endif  // CQCHASE_CHASE_BULK_H_
