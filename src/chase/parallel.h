// Execution interface for the parallel (reliance-scheduled) chase core.
//
// The chase layer knows nothing about thread pools: ChaseCoreMode::kParallel
// expresses its concurrency as batches of independent closures handed to a
// ChaseTaskRunner with barrier semantics. The engine supplies an
// Executor-backed implementation (engine/executor.h: ExecutorTaskRunner);
// a null runner in ChaseLimits degrades to inline execution — same byte-
// identical prefix, no concurrency — which is also what keeps the parity
// tests meaningful on single-core hosts.
//
// Contract for RunAll:
//  * every task is executed exactly once;
//  * RunAll returns only after ALL tasks have completed (a barrier);
//  * tasks within one RunAll call may execute concurrently and in any
//    order — the chase only ever passes mutually independent tasks (they
//    touch disjoint witness classes; see chase/parallel.cc);
//  * tasks must not throw (they communicate failure through captured state).
//
// Implementations may run tasks on the calling thread (helping join) — the
// chase does not assume which thread executes a task.
#ifndef CQCHASE_CHASE_PARALLEL_H_
#define CQCHASE_CHASE_PARALLEL_H_

#include <functional>
#include <vector>

namespace cqchase {

class ChaseTaskRunner {
 public:
  virtual ~ChaseTaskRunner() = default;

  // Executes every task and returns after all complete (see file comment).
  virtual void RunAll(std::vector<std::function<void()>> tasks) = 0;
};

}  // namespace cqchase

#endif  // CQCHASE_CHASE_PARALLEL_H_
