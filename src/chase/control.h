// Cooperative cancellation and deadline propagation for long-running
// decision procedures.
//
// A ChaseControl is shared between the party running a chase-based decision
// (an engine worker extending a chase prefix) and the party that may want it
// to stop (an EngineFuture holding the other end of an async request). The
// runner polls Check()/CheckCancelOnly() at step granularity and unwinds
// with kCancelled / kDeadlineExceeded; both are "unknown, never wrong"
// verdicts, exactly like kResourceExhausted, and always leave the chase in a
// consistent, resumable state (a poll only fires between whole chase steps).
//
// Polling discipline: the cancel flag is a relaxed atomic load — cheap
// enough to test every step — while the deadline needs a clock read, so
// runners check it every kClockPollStride steps (a chase step is far below
// a microsecond; the stride bounds deadline overshoot to well under a
// millisecond without putting steady_clock::now() on the hot path).
#ifndef CQCHASE_CHASE_CONTROL_H_
#define CQCHASE_CHASE_CONTROL_H_

#include <atomic>
#include <chrono>
#include <optional>

#include "base/status.h"

namespace cqchase {

struct ChaseControl {
  // Steps between deadline clock reads (cancel is checked every step).
  static constexpr uint32_t kClockPollStride = 16;

  // Set (from any thread) to request cooperative cancellation.
  std::atomic<bool> cancel{false};
  // Absolute deadline; nullopt means none. Set before handing the control to
  // a runner and not mutated afterwards (only `cancel` is cross-thread).
  std::optional<std::chrono::steady_clock::time_point> deadline;

  bool cancelled() const { return cancel.load(std::memory_order_relaxed); }

  bool deadline_passed() const {
    return deadline.has_value() &&
           std::chrono::steady_clock::now() >= *deadline;
  }

  // Full poll: cancellation first (free), then the deadline (clock read).
  Status Check() const {
    CQCHASE_RETURN_IF_ERROR(CheckCancelOnly());
    if (deadline_passed()) {
      return Status::DeadlineExceeded("request deadline exceeded");
    }
    return Status::OK();
  }

  Status CheckCancelOnly() const {
    if (cancelled()) return Status::Cancelled("request cancelled");
    return Status::OK();
  }
};

}  // namespace cqchase

#endif  // CQCHASE_CHASE_CONTROL_H_
