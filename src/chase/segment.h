// Columnar level segments and chase-side bookkeeping shared by the scalar
// and bulk chase cores.
//
// A *segment* holds every conjunct minted by applying one IND across the
// level-L frontier of a chase — the set-at-a-time analogue of the paper's
// one-conjunct-at-a-time IND chase rule (the shape VLog's TGChase gives each
// rule-application node). Segments are column-major: column c of all rows
// minted by that (level, IND) application lives in one contiguous Term
// vector, and every row carries provenance (minted conjunct id + source
// conjunct id). The SegmentStore indexes minted ids so certificate
// extraction can resolve "which dependency created conjunct #n" in O(1)
// instead of scanning the arc list.
//
// Provenance caveat: segment rows record the *mint-time* source id. When a
// later FD merge dedupes conjuncts, Chase redirects ChaseConjunct::parent
// (and the arcs) to the surviving id, but segments are immutable history —
// consumers that need the live ancestor must follow ChaseConjunct::parent
// and use the segment edge only for the dependency label.
#ifndef CQCHASE_CHASE_SEGMENT_H_
#define CQCHASE_CHASE_SEGMENT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "cq/fact.h"
#include "schema/catalog.h"
#include "symbols/term.h"

namespace cqchase {

// Monotone counters and phase timers for one chase. Both cores fill the
// shared counters (steps, fd_merges, index_rebuilds); the segment/bulk
// fields stay zero under the scalar core. Timers are accumulated at batch
// granularity only — never one clock read per row.
struct ChaseStats {
  uint64_t steps = 0;            // FD + IND chase-rule applications
  uint64_t fd_merges = 0;        // FD rule firings (term identifications)
  uint64_t index_rebuilds = 0;   // witness/pending (scalar) or witness-group
                                 // (bulk) rebuilds from scratch
  uint64_t segments_built = 0;   // non-empty (level, IND) segments finalized
  uint64_t bulk_batches = 0;     // level-frontier sweeps started
  uint64_t bulk_ind_applications = 0;  // (conjunct, IND) pairs processed
                                       // inside sweeps
  uint64_t max_batch_rows = 0;   // widest frontier swept in one batch
  uint64_t inds_pruned = 0;      // bulk: INDs statically unreachable from the
                                 // initial relations (reliance analysis) —
                                 // no mask bit, no witness group, no work
  uint64_t witness_groups_pruned = 0;  // bulk: distinct rhs projections whose
                                       // witness index was never built because
                                       // every IND sharing it was pruned
  // kParallel only (zero under the scalar/bulk cores). A *sweep* is one
  // parallel level frontier committed via the plan/commit protocol
  // (chase/parallel.cc); levels that fall back to the serial bulk path are
  // counted in the two fallback counters instead and show up under the
  // bulk_* fields like any other bulk sweep.
  uint64_t parallel_sweeps = 0;   // level frontiers committed parallel
  uint64_t parallel_batches = 0;  // distinct (level, IND) batches across
                                  // committed parallel sweeps
  uint64_t parallel_serialized_levels = 0;  // sweeps aborted to the serial
                                            // path because the FD simulation
                                            // predicted a merge in the level
  uint64_t parallel_small_levels = 0;  // frontiers under parallel_min_pairs
                                       // routed serial without planning
  uint64_t parallel_depth_layers = 0;  // reliance-depth barrier layers
                                       // executed across committed sweeps
  uint64_t parallel_max_depth_width = 0;  // most witness-class tasks launched
                                          // inside one depth layer
  double join_ms = 0.0;    // bulk: witness probes + NDV minting sweeps
  double retain_ms = 0.0;  // bulk: frontier collection/sort + witness-group
                           // (re)builds
  double fd_ms = 0.0;      // full FD saturation phases (both cores)
  double plan_ms = 0.0;    // parallel: witness-class decision tasks + the
                           // sequential id/FD simulation (phases 1–2a)
};

// All conjuncts minted by one (level, IND) application. `columns[c][r]` is
// column c of minted row r; minted_ids/source_ids are row-aligned.
struct ColumnSegment {
  uint32_t level = 0;      // level of the minted conjuncts (source + 1)
  uint32_t ind_index = 0;  // index into DependencySet::inds()
  RelationId relation = 0;  // rhs relation of the IND
  std::vector<std::vector<Term>> columns;
  std::vector<uint64_t> minted_ids;
  std::vector<uint64_t> source_ids;  // mint-time sources (see caveat above)

  size_t rows() const { return minted_ids.size(); }

  // Appends the fact's terms column-wise plus the provenance row.
  void AppendRow(const Fact& fact, uint64_t minted_id, uint64_t source_id);

  // Reassembles row r as a Fact (tests / debugging; the chase itself keeps
  // the authoritative row in conjuncts_).
  Fact RowFact(size_t r) const;
};

// Provenance edge for one minted conjunct: which segment row created it.
struct SegmentEdge {
  uint32_t segment = 0;  // index into SegmentStore::segments()
  uint32_t row = 0;
  uint64_t source_id = 0;
  uint32_t ind_index = 0;
};

class SegmentStore {
 public:
  const std::vector<ColumnSegment>& segments() const { return segments_; }

  // O(1): the segment row that minted conjunct `id`, or nullopt for level-0
  // roots and scalar-minted conjuncts.
  std::optional<SegmentEdge> EdgeOf(uint64_t id) const;

  void Add(ColumnSegment segment);

  size_t TotalRows() const { return total_rows_; }
  bool empty() const { return segments_.empty(); }

 private:
  static constexpr uint64_t kNoEdge = ~uint64_t{0};

  std::vector<ColumnSegment> segments_;
  // minted id -> packed (segment << 32 | row); kNoEdge when absent.
  std::vector<uint64_t> edge_of_id_;
  size_t total_rows_ = 0;
};

// Dense (IND × conjunct-id) bitmap: which INDs the discipline has already
// considered for which conjunct. Replaces a std::set<pair<ind, id>> — the
// old representation made merge-time inheritance a full-set scan and the
// per-conjunct pending check a log-time probe per IND; here both are a few
// word ops, and the bulk core reads whole rows as masks.
class ConsideredSet {
 public:
  // Must be called before use; wipes all bits.
  void Reset(size_t num_inds);

  size_t words_per_row() const { return words_; }

  bool Test(uint32_t ind, uint64_t id) const;
  void Set(uint32_t ind, uint64_t id);

  // OR `from`'s row into `to`'s: an IND applied to either copy of a merged
  // conjunct has been applied to the survivor.
  void Inherit(uint64_t from, uint64_t to);

  // Raw row for conjunct `id`, or nullptr if no bit of the row was ever set
  // (treat as all-zero). Valid until the next Set/Inherit.
  const uint64_t* Row(uint64_t id) const;

 private:
  void EnsureRow(uint64_t id);

  size_t words_ = 0;
  std::vector<uint64_t> bits_;  // rows_ * words_, row-major by conjunct id
};

}  // namespace cqchase

#endif  // CQCHASE_CHASE_SEGMENT_H_
