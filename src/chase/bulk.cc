// The set-at-a-time chase core (ChaseCoreMode::kBulk): level-frontier
// sweeps over columnar segments. Produces a prefix bit-identical to the
// scalar core — same conjunct ids, facts, levels, arcs, step counts, NDV
// names, outcome — which the comments below argue invariant by invariant
// and tests/chase_core_parity_test.cc checks differentially.
#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "analysis/reliance.h"
#include "base/string_util.h"
#include "chase/bulk.h"
#include "chase/chase.h"

namespace cqchase {

namespace {

using SteadyClock = std::chrono::steady_clock;

double MsSince(SteadyClock::time_point start) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - start)
      .count();
}

}  // namespace

void Chase::PrepareBulk() {
  bulk_ = std::make_unique<BulkState>();
  BulkState& b = *bulk_;
  const auto& inds = deps_->inds();
  const size_t words = considered_.words_per_row();
  b.applicable_mask.assign(catalog_->num_relations(), {});
  b.group_of_ind.assign(inds.size(), BulkState::kPrunedGroup);
  b.ind_has_fresh_columns.resize(inds.size());
  b.ind_depth.assign(inds.size(), 0);

  // Reliance pruning: an IND fires only on a fact of its lhs relation, and
  // relations gain facts only from the initial conjuncts or as some fired
  // IND's rhs (FD merges never introduce a relation). So the reliance
  // closure from the relations present now — PrepareBulk runs before the
  // first IND application, when only level-0 conjuncts exist — is exactly
  // the set of INDs that can ever fire, in either core. Pruned INDs get no
  // mask bit and no witness group: the scalar oracle never steps them
  // either, so the bit-identical parity contract is preserved (differential
  // proof in tests/reliance_test.cc).
  std::vector<bool> present(catalog_->num_relations(), false);
  for (const ChaseConjunct& c : conjuncts_) {
    if (c.alive) present[c.fact.relation] = true;
  }
  const SigmaGraph graph(*deps_, *catalog_);
  const std::vector<bool> reachable = graph.ReachableInds(present);

  std::set<std::pair<RelationId, std::vector<uint32_t>>> all_projections;
  std::map<std::pair<RelationId, std::vector<uint32_t>>, uint32_t> group_index;
  for (uint32_t k = 0; k < inds.size(); ++k) {
    const InclusionDependency& ind = inds[k];
    all_projections.emplace(ind.rhs_relation, ind.rhs_columns);
    if (!reachable[k]) {
      ++stats_.inds_pruned;
      continue;
    }
    std::vector<uint64_t>& mask = b.applicable_mask[ind.lhs_relation];
    if (mask.empty()) mask.assign(words, 0);
    mask[k / 64] |= uint64_t{1} << (k % 64);
    auto [it, inserted] = group_index.emplace(
        std::make_pair(ind.rhs_relation, ind.rhs_columns),
        static_cast<uint32_t>(b.groups.size()));
    if (inserted) {
      b.groups.push_back(
          BulkState::WitnessGroup{ind.rhs_relation, ind.rhs_columns, {}});
    }
    b.group_of_ind[k] = it->second;
    b.ind_has_fresh_columns[k] =
        ind.width() < catalog_->arity(ind.rhs_relation);
    b.ind_depth[k] = graph.components()[graph.ComponentOf(k)].depth;
  }
  stats_.witness_groups_pruned = all_projections.size() - b.groups.size();
  b.groups_of_relation.assign(catalog_->num_relations(), {});
  for (uint32_t g = 0; g < b.groups.size(); ++g) {
    b.groups_of_relation[b.groups[g].relation].push_back(g);
  }
  b.witness_dirty = true;
}

void Chase::AddToWitnessGroups(const ChaseConjunct& conjunct) {
  for (uint32_t g : bulk_->groups_of_relation[conjunct.fact.relation]) {
    BulkState::WitnessGroup& group = bulk_->groups[g];
    std::vector<Term> projection;
    projection.reserve(group.columns.size());
    for (uint32_t col : group.columns) {
      projection.push_back(conjunct.fact.terms[col]);
    }
    group.index[std::move(projection)].emplace(conjunct.fact, conjunct.id);
  }
}

void Chase::RebuildWitnessGroups() {
  ++stats_.index_rebuilds;
  for (BulkState::WitnessGroup& group : bulk_->groups) group.index.clear();
  for (const ChaseConjunct& c : conjuncts_) {
    if (c.alive) AddToWitnessGroups(c);
  }
  bulk_->witness_dirty = false;
}

bool Chase::BulkHasPendingWork(uint32_t level) const {
  const size_t words = considered_.words_per_row();
  for (const ChaseConjunct& c : conjuncts_) {
    if (!c.alive || c.level >= level) continue;
    const std::vector<uint64_t>& mask =
        bulk_->applicable_mask[c.fact.relation];
    if (mask.empty()) continue;
    const uint64_t* row = considered_.Row(c.id);
    for (size_t w = 0; w < words; ++w) {
      if ((mask[w] & ~(row != nullptr ? row[w] : 0)) != 0) return true;
    }
  }
  return false;
}

Result<bool> Chase::RunLevelBatch(uint32_t effective) {
  BulkState& b = *bulk_;
  const std::vector<InclusionDependency>& inds = deps_->inds();
  if (inds.empty()) return false;
  const size_t words = considered_.words_per_row();

  // --- Retain phase: rebuild witnesses if stale, collect the frontier. ----
  const SteadyClock::time_point retain_start = SteadyClock::now();
  if (b.witness_dirty) RebuildWitnessGroups();

  // The frontier: alive conjuncts at the minimum level below `effective`
  // that still have unconsidered applicable INDs. Once this sweep starts,
  // the frontier is stable — every mint lands at frontier_level + 1, and an
  // FD merge aborts the sweep — so the scalar core's (level, fact, id, ind)
  // pending order linearizes to: frontier sorted by (fact, id), pending INDs
  // ascending within each conjunct. That is exactly the order below.
  uint32_t frontier_level = std::numeric_limits<uint32_t>::max();
  std::vector<uint64_t> frontier;
  for (const ChaseConjunct& c : conjuncts_) {
    if (!c.alive || c.level >= effective || c.level > frontier_level) continue;
    const std::vector<uint64_t>& mask = b.applicable_mask[c.fact.relation];
    if (mask.empty()) continue;
    const uint64_t* row = considered_.Row(c.id);
    bool pending = false;
    for (size_t w = 0; w < words && !pending; ++w) {
      pending = (mask[w] & ~(row != nullptr ? row[w] : 0)) != 0;
    }
    if (!pending) continue;
    if (c.level < frontier_level) {
      frontier_level = c.level;
      frontier.clear();
    }
    frontier.push_back(c.id);
  }
  if (frontier.empty()) {
    stats_.retain_ms += MsSince(retain_start);
    return false;
  }
  std::sort(frontier.begin(), frontier.end(), [&](uint64_t x, uint64_t y) {
    const Fact& fx = conjuncts_[IndexOfId(x)].fact;
    const Fact& fy = conjuncts_[IndexOfId(y)].fact;
    if (fx != fy) return fx < fy;
    return x < y;
  });
  ++stats_.bulk_batches;
  stats_.max_batch_rows =
      std::max<uint64_t>(stats_.max_batch_rows, frontier.size());
  stats_.retain_ms += MsSince(retain_start);

  // --- Join phase: apply every pending IND across the frontier. -----------
  // Per-IND columnar accumulators; whatever was minted is flushed into
  // segments_ on every exit path (including aborts — those mints happened).
  std::vector<ColumnSegment> acc(inds.size());
  struct SweepGuard {
    Chase* chase;
    std::vector<ColumnSegment>* acc;
    SteadyClock::time_point join_start = SteadyClock::now();
    ~SweepGuard() {
      for (ColumnSegment& seg : *acc) {
        if (seg.rows() == 0) continue;
        ++chase->stats_.segments_built;
        chase->segments_.Add(std::move(seg));
      }
      chase->stats_.join_ms += MsSince(join_start);
    }
  } sweep_guard{this, &acc};

  std::vector<uint32_t> pending_inds;
  std::vector<Term> x_values;
  for (const uint64_t source_id : frontier) {
    // Snapshot this conjunct's pending INDs up front: Set() below mutates
    // the considered row while we iterate. The fact is copied because
    // conjuncts_ may reallocate on push_back; it cannot change value
    // mid-sweep (a merge would have aborted the sweep first).
    const Fact source_fact = conjuncts_[IndexOfId(source_id)].fact;
    const std::vector<uint64_t>& mask = b.applicable_mask[source_fact.relation];
    const uint64_t* row = considered_.Row(source_id);
    pending_inds.clear();
    for (size_t w = 0; w < words; ++w) {
      uint64_t bits = mask[w] & ~(row != nullptr ? row[w] : 0);
      while (bits != 0) {
        pending_inds.push_back(static_cast<uint32_t>(
            w * 64 + static_cast<size_t>(__builtin_ctzll(bits))));
        bits &= bits - 1;
      }
    }
    for (const uint32_t k : pending_inds) {
      // Same per-step sequence as the scalar OneIndStep: poll, count the
      // step, check max_steps, mark considered, probe, mint, check
      // max_conjuncts — divergence in any of these would break id parity.
      CQCHASE_RETURN_IF_ERROR(PollControl());
      ++stats_.steps;
      ++stats_.bulk_ind_applications;
      if (stats_.steps > limits_.max_steps) {
        return Status::ResourceExhausted(
            StrCat("chase exceeded max_steps=", limits_.max_steps));
      }
      considered_.Set(k, source_id);
      const InclusionDependency& ind = inds[k];
      x_values.clear();
      for (uint32_t c : ind.lhs_columns) {
        x_values.push_back(source_fact.terms[c]);
      }

      // Witness probe against the shared (rhs_relation, rhs_columns) group:
      // identical contents to the scalar per-IND witness_index_[k], kept
      // current within the sweep by AddToWitnessGroups at each mint (a later
      // frontier row may be witnessed by an earlier in-sweep mint).
      BulkState::WitnessGroup& group = b.groups[b.group_of_ind[k]];
      std::optional<uint64_t> witness;
      auto it = group.index.find(x_values);
      if (it != group.index.end() && !it->second.empty()) {
        witness = it->second.begin()->second;  // min (fact, id)
      }
      if (variant_ == ChaseVariant::kRequired ||
          (witness.has_value() && !b.ind_has_fresh_columns[k])) {
        if (witness.has_value()) {
          MarkIndUsed(k);
          arcs_.push_back(ChaseArc{source_id, *witness, k, /*cross=*/true});
          continue;
        }
      }

      // IND CHASE RULE, same mint sequence (and thus NDV id sequence) as
      // the scalar core.
      const uint32_t new_level = frontier_level + 1;
      Fact created;
      created.relation = ind.rhs_relation;
      created.terms.resize(catalog_->arity(ind.rhs_relation));
      for (size_t i = 0; i < ind.rhs_columns.size(); ++i) {
        created.terms[ind.rhs_columns[i]] = x_values[i];
      }
      for (uint32_t col = 0; col < created.terms.size(); ++col) {
        if (!created.terms[col].is_valid()) {
          created.terms[col] = ndv_shard_.MakeChaseNdv(
              NdvProvenance{col, source_id, k, new_level});
        }
      }
      if (conjuncts_.size() >= limits_.max_conjuncts) {
        return Status::ResourceExhausted(
            StrCat("chase exceeded max_conjuncts=", limits_.max_conjuncts));
      }
      const uint64_t new_id = next_id_++;
      ColumnSegment& seg = acc[k];
      if (seg.rows() == 0) {
        seg.level = new_level;
        seg.ind_index = k;
        seg.relation = ind.rhs_relation;
      }
      seg.AppendRow(created, new_id, source_id);
      conjuncts_.push_back(ChaseConjunct{new_id, std::move(created), new_level,
                                         /*alive=*/true, source_id, k});
      MarkIndUsed(k);
      arcs_.push_back(ChaseArc{source_id, new_id, k, /*cross=*/false});
      AddToWitnessGroups(conjuncts_.back());
      fd_queue_.push_back(new_id);

      // Incremental FD probe after each mint — the point in the scalar
      // interleaving where RunFdPhase sees this conjunct. A firing merge
      // mutates facts (witness_dirty) or empties the query; either way the
      // frontier is invalid: abort the sweep, the caller restarts it.
      if (!deps_->fds().empty()) {
        CQCHASE_RETURN_IF_ERROR(RunFdPhase());
        if (outcome_ == ChaseOutcome::kEmptyQuery || b.witness_dirty) {
          return true;
        }
      }
    }
  }
  return true;
}

Result<ChaseOutcome> Chase::BulkExpandToLevel(uint32_t effective) {
  if (bulk_ == nullptr) PrepareBulk();
  while (true) {
    CQCHASE_RETURN_IF_ERROR(PollControl());
    CQCHASE_RETURN_IF_ERROR(RunFdPhase());
    if (outcome_ == ChaseOutcome::kEmptyQuery) return outcome_;
    CQCHASE_ASSIGN_OR_RETURN(bool progressed, RunLevelBatch(effective));
    if (!progressed) break;
  }
  // No work below `effective`. Saturated iff nothing remains at any level —
  // same determination as the scalar core, via masks instead of pending_.
  outcome_ = BulkHasPendingWork(std::numeric_limits<uint32_t>::max())
                 ? ChaseOutcome::kTruncated
                 : ChaseOutcome::kSaturated;
  return outcome_;
}

}  // namespace cqchase
