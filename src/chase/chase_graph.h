// Chase-graph utilities: the directed-graph view of a chase used throughout
// Section 3 of the paper (vertices = conjuncts, ordinary arcs = IND
// creations, cross arcs = R-chase redundancy edges), plus the Lemma 2
// factorization of the R-chase for key-based dependency sets.
#ifndef CQCHASE_CHASE_CHASE_GRAPH_H_
#define CQCHASE_CHASE_CHASE_GRAPH_H_

#include <string>

#include "chase/chase.h"

namespace cqchase {

// Renders the chase graph in Graphviz DOT format: one node per alive
// conjunct (labelled with its fact and level), solid edges for ordinary
// arcs, dashed edges for cross arcs, edge labels naming the IND applied.
// This regenerates Figure 1 of the paper for its example inputs.
std::string ChaseGraphToDot(const Chase& chase);

// A plain-text, level-by-level rendering of the chase graph (Figure 1 as
// text): each line shows "level | conjunct | <-IND- parent".
std::string ChaseGraphToText(const Chase& chase);

// Lemma 2: for key-based Σ, R-chaseΣ(Q) = R-chase_Σ[I](chase_Σ[F](Q)).
// This computes the right-hand side: first the (always terminating) FD-only
// chase of Q, then the R-chase of the result under the INDs of Σ only.
// The caller can compare it with the direct R-chase; see
// QueriesIsomorphic() in core/homomorphism.h for the comparison.
Result<Chase> FactorizedRChase(const ConjunctiveQuery& query,
                               const DependencySet& deps, SymbolTable& symbols,
                               ChaseLimits limits = {});

// Maximum distance between the levels of two occurrences of one symbol in
// the alive conjuncts (0 if every symbol is level-local). Lemma 6 asserts
// this is <= 1 for key-based R-chases.
uint32_t MaxSymbolLevelSpan(const Chase& chase);

}  // namespace cqchase

#endif  // CQCHASE_CHASE_CHASE_GRAPH_H_
