// The chase of a conjunctive query with respect to a set Σ of FDs and INDs
// (Section 3 of Johnson & Klug).
//
// FD CHASE RULE. For an FD R: Z -> A applicable to conjuncts c1, c2 (same
// Z-values, different A-values), identify c1[A] and c2[A] everywhere. If both
// are constants the query is contradictory: all conjuncts are deleted and the
// chase halts ("empty query"). If one is a constant the constant survives;
// if both are variables the lexicographically first survives (DVs precede
// NDVs).
//
// IND CHASE RULE. For an IND R[X] ⊆ S[Y] applicable to a conjunct c (i.e.,
// R(c) = R), add a new conjunct c' over S with c'[Y] = c[X] and a fresh NDV
// in every other column; level(c') = level(c) + 1.
//
// Two disciplines for the IND rule:
//  * O-chase ("oblivious"): every IND is applied once to every conjunct to
//    which it is applicable, including chase-created ones.
//  * R-chase ("required"): an IND is applied to c only if no conjunct c'
//    with R(c') = S and c'[Y] = c[X] already exists; otherwise a *cross arc*
//    to the existing witness is recorded.
//
// Both chases can be infinite; the engine is incremental: ExpandToLevel(L)
// completes the prefix up to level L and can be resumed with a larger L.
// Construction order follows the paper exactly: exhaust applicable FDs, then
// apply one IND step to the lexicographically first minimum-level conjunct
// with the lexicographically first applicable (required) IND, repeat.
#ifndef CQCHASE_CHASE_CHASE_H_
#define CQCHASE_CHASE_CHASE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "chase/control.h"
#include "chase/segment.h"
#include "cq/fact.h"
#include "cq/query.h"
#include "data/instance.h"
#include "deps/dependency_set.h"
#include "schema/catalog.h"
#include "symbols/symbol_table.h"

namespace cqchase {

enum class ChaseVariant {
  kOblivious,  // O-chase
  kRequired,   // R-chase
};

// Which executor drives the IND phase. All cores produce bit-identical
// chase prefixes (same conjunct ids, levels, facts, arcs, outcome, and step
// counts) — the scalar core is the paper-literal oracle, the bulk core the
// set-at-a-time columnar engine (see chase/bulk.h), and the parallel core
// plans each level sweep like the bulk core but executes its independent
// witness classes concurrently (see chase/parallel.cc). Equivalence is
// enforced differentially by tests/chase_core_parity_test.cc.
enum class ChaseCoreMode {
  kScalar,    // one PendingStep at a time (reference/oracle)
  kBulk,      // level-frontier batches over columnar segments (default)
  kParallel,  // bulk planning + concurrent witness-class sweeps
};

class ChaseTaskRunner;  // chase/parallel.h

// Resource budgets for one chase. Limits make truncation explicit: hitting
// one never yields a wrong chase, only an incomplete prefix.
struct ChaseLimits {
  uint32_t max_level = 64;
  size_t max_conjuncts = 200000;
  size_t max_steps = 2000000;
  ChaseCoreMode core = ChaseCoreMode::kBulk;
  // kParallel only: executes the sweep's independent witness-class tasks
  // (chase/parallel.h). Not owned; must outlive every Expand call. Null
  // degrades to inline execution — still byte-identical, no concurrency.
  ChaseTaskRunner* runner = nullptr;
  // kParallel only: frontiers with fewer pending (conjunct, IND) pairs than
  // this run through the serial bulk path — the plan/commit bookkeeping
  // cannot pay for itself on a handful of pairs. Counted in
  // ChaseStats::parallel_small_levels; both paths produce identical bytes.
  uint32_t parallel_min_pairs = 16;
};

enum class ChaseOutcome {
  // No applicable (required) dependency remains anywhere: the chase is
  // finite and this object holds all of it.
  kSaturated,
  // The prefix up to the requested level is complete, but deeper conjuncts
  // have unprocessed dependencies (possibly an infinite chase).
  kTruncated,
  // The FD rule merged two distinct constants: the query is unsatisfiable
  // under Σ and the chase is the empty query.
  kEmptyQuery,
};

// One conjunct of the (partial) chase.
struct ChaseConjunct {
  uint64_t id = 0;       // creation order, stable across merges
  Fact fact;             // current value (post all FD substitutions so far)
  uint32_t level = 0;    // paper's level: 0 for Q's conjuncts, parent+1 else
  bool alive = true;     // false once merged into an earlier conjunct
  // Ordinary-arc parent: the conjunct this one was created from by an IND
  // application; nullopt for level-0 roots.
  std::optional<uint64_t> parent;
  std::optional<uint32_t> parent_ind;  // index into deps.inds()
};

// Arc of the chase graph. Ordinary arcs are creation edges; cross arcs are
// R-chase edges to an already-present witness conjunct (recorded in the
// O-chase only when an application would duplicate an existing conjunct).
struct ChaseArc {
  uint64_t from = 0;
  uint64_t to = 0;
  uint32_t ind_index = 0;
  bool cross = false;
};

struct BulkState;  // chase/bulk.h

class Chase {
 public:
  // The engine creates fresh NDVs in `symbols` as it runs; `symbols` must
  // outlive the Chase and be the table `query` was built against.
  Chase(const Catalog* catalog, SymbolTable* symbols,
        const DependencySet* deps, ChaseVariant variant, ChaseLimits limits);
  ~Chase();
  Chase(Chase&&) noexcept;
  Chase& operator=(Chase&&) noexcept;

  // Loads Q's conjuncts at level 0 and runs the initial FD phase.
  // Must be called exactly once, before any Expand call.
  Status Init(const ConjunctiveQuery& query);

  // Completes the chase prefix up to `level`: afterwards, every alive
  // conjunct with level < `level` has had every applicable IND considered,
  // and no FD is applicable. Monotone and resumable. Returns the outcome
  // (kTruncated means "complete up to `level`, more beyond"; a limit hit
  // yields kResourceExhausted status instead).
  Result<ChaseOutcome> ExpandToLevel(uint32_t level);

  // Runs to the configured limits.
  Result<ChaseOutcome> Run() { return ExpandToLevel(limits_.max_level); }

  // Attaches (or detaches, with nullptr) a cooperative cancellation /
  // deadline control. Polled between chase steps: cancellation every step,
  // the deadline every ChaseControl::kClockPollStride steps. A tripped
  // control unwinds ExpandToLevel with kCancelled / kDeadlineExceeded and —
  // like a resource limit — leaves a consistent prefix that a later call
  // (under a fresh or cleared control) can resume. The control must outlive
  // every Expand call made while it is attached; shared chases (the engine's
  // prefix cache) attach the current asker's control for the duration of its
  // turn and detach before handing the chase to the next asker.
  void set_control(const ChaseControl* control) { control_ = control; }

  // --- Inspection ---------------------------------------------------------

  const std::vector<ChaseConjunct>& conjuncts() const { return conjuncts_; }
  const std::vector<ChaseArc>& arcs() const { return arcs_; }
  const std::vector<Term>& summary() const { return summary_; }
  ChaseOutcome outcome() const { return outcome_; }
  bool is_empty_query() const { return outcome_ == ChaseOutcome::kEmptyQuery; }

  // Alive conjunct facts, optionally restricted to level <= max_level.
  std::vector<Fact> AliveFacts(
      std::optional<uint32_t> max_level = std::nullopt) const;

  // Alive conjuncts (id, fact, level), sorted by (level, id).
  std::vector<const ChaseConjunct*> AliveConjuncts() const;

  // Number of alive conjuncts at the given level.
  size_t CountAtLevel(uint32_t level) const;
  uint32_t MaxAliveLevel() const;

  // The chase viewed as a query: alive conjuncts + current summary row
  // (Theorem 1's chase_Σ(Q)). Variables in chase conjuncts keep their kinds.
  ConjunctiveQuery AsQuery() const;

  // The chase viewed as a database instance (each variable read as a fresh
  // constant — terms are carried over verbatim; Instance treats all terms as
  // values).
  Instance AsInstance() const;

  // Applies the accumulated FD substitution to a term (identity if the term
  // was never merged). Exposed for tests of the merge discipline.
  Term ResolveTerm(Term t) const;

  // Total chase-rule applications so far (FD + IND steps).
  size_t steps() const { return static_cast<size_t>(stats_.steps); }

  // Counters and phase timers (see chase/segment.h). Monotone across
  // ExpandToLevel calls; the engine snapshots deltas per asker turn.
  const ChaseStats& chase_stats() const { return stats_; }

  // Used-dependency capture for Σ-lineage (engine/lineage.h): which INDs
  // fired (minted a conjunct or recorded a cross arc) and which FDs merged
  // anywhere in this prefix so far. Monotone and cumulative — a shared
  // prefix accumulates bits across askers, which over-approximates any one
  // asker's derivation (sound: lineage only ever *widens* the touched set).
  // Indexed like deps.inds() / deps.fds(); identical across the three cores
  // because the marks sit on the shared FD-merge site and on each core's
  // arc-recording sites, which the parity contract keeps byte-identical.
  const std::vector<bool>& used_inds() const { return used_inds_; }
  const std::vector<bool>& used_fds() const { return used_fds_; }

  // Columnar provenance built by the bulk core; empty under kScalar.
  const SegmentStore& segments() const { return segments_; }

  // O(1) lookup by conjunct id (ids are dense creation indices), nullptr if
  // out of range. The returned conjunct may be dead (merged away).
  const ChaseConjunct* ConjunctById(uint64_t id) const {
    return id < conjuncts_.size() ? &conjuncts_[id] : nullptr;
  }

  std::string ToString() const;

 private:
  // Runs the FD phase: applies the FD chase rule until no FD is applicable,
  // choosing the lexicographically first conjunct pair, then the first FD.
  // May set outcome_ = kEmptyQuery.
  Status RunFdPhase();

  // Finds and performs one IND step below `level`. Returns true if a step
  // was taken; false if no conjunct with level < `level` has an unconsidered
  // applicable IND.
  Result<bool> OneIndStep(uint32_t level);

  // True iff some alive conjunct at level < `level` still has an
  // unconsidered applicable IND.
  bool HasPendingIndWork(uint32_t level);

  // Applies fd to conjuncts a, b (indices into conjuncts_). Returns false if
  // the merge hit a constant clash (outcome_ set to kEmptyQuery).
  bool ApplyFd(const FunctionalDependency& fd, size_t a, size_t b);

  // Merges term `loser` into `winner` everywhere; dedupes conjuncts.
  void SubstituteTerm(Term winner, Term loser);

  // Re-canonicalizes conjuncts after a substitution: facts equal as tuples
  // are merged (min level, min id survive; arcs are redirected).
  void DedupeConjuncts();

  // First alive conjunct whose fact matches (rhs_relation, Y = values), or
  // nullopt. Deterministic: smallest fact, then smallest id. Served from
  // witness_index_.
  std::optional<uint64_t> FindWitness(uint32_t ind_index,
                                      const std::vector<Term>& x_values);

  size_t IndexOfId(uint64_t id) const;

  // --- Performance indices -------------------------------------------------
  // Pure caches over conjuncts_ / considered_; rebuilt lazily whenever an FD
  // substitution mutates facts (index_dirty_). They turn the per-step
  // selection scans — O(|conjuncts|·|Σ|) in the naive reading of the paper's
  // procedure — into O(log) lookups without changing which step is chosen.

  // One unconsidered applicable (conjunct, IND) pair. Ordered exactly as the
  // paper's selection rule reads candidates: minimum level first, then
  // lexicographically smallest fact, then creation id, then IND index — so
  // *pending_.begin() is always the next step to take.
  struct PendingStep {
    uint32_t level;
    Fact fact;
    uint64_t id;
    uint32_t ind;

    friend bool operator<(const PendingStep& a, const PendingStep& b) {
      if (a.level != b.level) return a.level < b.level;
      if (a.fact != b.fact) return a.fact < b.fact;
      if (a.id != b.id) return a.id < b.id;
      return a.ind < b.ind;
    }
  };

  // Rebuilds pending_ and witness_index_ from scratch.
  void RebuildIndices();
  // Adds index entries for a newly created conjunct (no rebuild needed:
  // creation never mutates existing facts).
  void IndexNewConjunct(const ChaseConjunct& conjunct);

  // Polls the attached control (no-op when none): cancellation every call,
  // the deadline every kClockPollStride-th call.
  Status PollControl();

  // The full FD phase: scan-based saturation, then rebuilds fd_index_.
  Status RunFullFdPhase();
  // Checks only the queued newly-created conjuncts against fd_index_;
  // escalates to the full phase when a merge fires.
  Status RunIncrementalFdPhase();

  // --- Bulk (set-at-a-time) core; implemented in chase/bulk.cc ------------
  // Level-frontier loop replacing the scalar OneIndStep loop under
  // ChaseCoreMode::kBulk. Produces a prefix identical to the scalar core.
  Result<ChaseOutcome> BulkExpandToLevel(uint32_t effective);
  // One frontier sweep: collects the minimum-level pending frontier below
  // `effective`, applies every unconsidered applicable IND across it, and
  // flushes one columnar segment per (level, IND). Returns true if any
  // (conjunct, IND) pair was processed.
  Result<bool> RunLevelBatch(uint32_t effective);
  // Pending-work probe without the scalar pending_ set: scans conjuncts
  // against per-relation applicable-IND masks minus considered_ rows.
  bool BulkHasPendingWork(uint32_t level) const;
  void PrepareBulk();           // static Σ shape (masks, witness groups)
  void RebuildWitnessGroups();  // from-scratch witness rebuild (post-merge)
  void AddToWitnessGroups(const ChaseConjunct& conjunct);

  // --- Parallel core; implemented in chase/parallel.cc --------------------
  // Level-frontier loop under ChaseCoreMode::kParallel: same shape as
  // BulkExpandToLevel but sweeps via RunLevelFrontier. Byte-identical
  // prefix to the scalar/bulk cores.
  Result<ChaseOutcome> ParallelExpandToLevel(uint32_t effective);
  // One parallel sweep: partitions the pending frontier into rhs-relation
  // witness classes, computes witness decisions concurrently (read-only),
  // plans the exact scalar id sequence sequentially, commits sequentially,
  // then merges witness-group appends class-parallel. Falls back to
  // RunLevelBatch for small frontiers and FD-merge levels. Returns true if
  // any (conjunct, IND) pair was processed.
  Result<bool> RunLevelFrontier(uint32_t effective);

  const Catalog* catalog_;
  SymbolTable* symbols_;
  const DependencySet* deps_;
  ChaseVariant variant_;
  ChaseLimits limits_;
  // Per-chase NDV allocation shard: IND steps mint fresh NDVs without
  // touching the SymbolTable mutex, so concurrent chases (CheckMany fan-out)
  // never contend on the arena. Unused block tail returns on destruction.
  SymbolTable::NdvShard ndv_shard_;

  // Marks IND k as having shaped the prefix; every arc-recording site in
  // every core calls this alongside its arcs_.push_back.
  void MarkIndUsed(uint32_t ind_index) { used_inds_[ind_index] = true; }

  std::vector<ChaseConjunct> conjuncts_;
  std::vector<ChaseArc> arcs_;
  std::vector<Term> summary_;
  // Used-dependency bitmaps (see used_inds()/used_fds()); sized at
  // construction, set by MarkIndUsed and ApplyFd.
  std::vector<bool> used_inds_;
  std::vector<bool> used_fds_;
  // (ind_index, conjunct_id) pairs already considered by the IND discipline,
  // as a dense bitmap (one row of |inds| bits per conjunct).
  ConsideredSet considered_;
  // Accumulated FD substitution, applied lazily via ResolveTerm.
  std::unordered_map<Term, Term> substitution_;

  // Caches (see PendingStep above). witness_index_[k] maps the projection of
  // a fact of inds()[k].rhs_relation onto inds()[k].rhs_columns to the alive
  // conjuncts carrying that projection, ordered (fact, id) so begin() is the
  // deterministic witness.
  std::set<PendingStep> pending_;
  std::vector<std::map<std::vector<Term>, std::set<std::pair<Fact, uint64_t>>>>
      witness_index_;
  bool index_dirty_ = true;

  // Per-FD map from lhs-values to a representative alive conjunct id, plus
  // the queue of conjuncts created since the last FD check. Keeping the FD
  // phase incremental matters: the paper's procedure re-runs the FD rule
  // between any two IND steps, which read naively is a full rescan per step.
  std::vector<std::map<std::vector<Term>, uint64_t>> fd_index_;
  std::vector<uint64_t> fd_queue_;
  bool fd_index_dirty_ = true;

  ChaseOutcome outcome_ = ChaseOutcome::kTruncated;
  bool initialized_ = false;
  uint64_t next_id_ = 0;
  ChaseStats stats_;
  // Columnar provenance (bulk core only; stays empty under kScalar).
  SegmentStore segments_;
  // Lazily allocated bulk-core working state (chase/bulk.h).
  std::unique_ptr<BulkState> bulk_;
  const ChaseControl* control_ = nullptr;
  uint32_t control_polls_ = 0;
};

// Convenience: builds and runs a chase to `limits.max_level`.
Result<Chase> BuildChase(const ConjunctiveQuery& query,
                         const DependencySet& deps, SymbolTable& symbols,
                         ChaseVariant variant, ChaseLimits limits = {});

}  // namespace cqchase

#endif  // CQCHASE_CHASE_CHASE_H_
