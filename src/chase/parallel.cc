// The parallel chase core (ChaseCoreMode::kParallel): reliance-scheduled
// concurrent level sweeps that produce a prefix byte-identical to the
// scalar/bulk cores.
//
// Why this is possible at all: within one level sweep the frontier is frozen
// (every mint lands at frontier_level + 1, and an FD merge aborts the sweep),
// and the only shared structure the per-pair decision reads is the witness
// index of the IND's rhs relation. Group witness sets by that relation — the
// *witness class* — and classes become mutually independent: a class-C probe
// touches only relation-C groups, and every in-sweep mint that could witness
// a class-C pair is itself a class-C mint (a mint's relation IS its class).
// So witness decisions can be computed class-concurrently with zero shared
// writes, as long as each class sees its own earlier in-sweep mints — which
// a class-local overlay over the shared (read-only) group indexes provides.
//
// What cannot be computed concurrently is anything id-bearing: conjunct ids,
// NDV ids/names, arc order, and segment rows are an observable contract
// (certificates, resumability, ToString parity), and the scalar core
// interleaves them row-major across the frontier. Hence the four phases:
//
//   0. (seq)      collect + sort the frontier, snapshot every pending
//                 (conjunct, IND) pair in scalar order, partition by class;
//   1. (parallel) per class: decide mint-vs-cross for each pair and pick the
//                 deterministic witness, writing only into the pair itself.
//                 Classes launch depth-layer by depth-layer following
//                 SigmaGraph::frontiers() (BulkState::ind_depth), barrier per
//                 layer — scheduling structure only, correctness needs just
//                 the class disjointness;
//   2a. (seq)     pure simulation: walk pairs in scalar order assigning the
//                 exact ids the scalar core would ("reservation before
//                 firing"), predicting resource-limit trips, and running a
//                 shadow FD check. ANY predicted FD merge discards the plan
//                 and serializes the level through RunLevelBatch (counted in
//                 parallel_serialized_levels) — nothing has been mutated yet;
//   2b. (seq)     commit: replay the per-pair scalar sequence (step counters,
//                 considered bits, NDV mints, conjunct/arc/segment appends,
//                 incremental FD bookkeeping) using the precomputed
//                 decisions. Sequential by design — this is the cheap part;
//   3. (parallel) per class: merge the committed mints into the shared
//                 witness-group indexes (disjoint per class), one barrier.
//
// Misprediction safety: phase 2b applies the *real* incremental FD phase per
// mint, so even if the phase-2a shadow simulation were ever wrong and a merge
// fired mid-commit, the bytes produced so far are exactly the bulk core's —
// the sweep aborts like a bulk sweep and the next one rebuilds. A wrong plan
// can cost parallelism, never correctness.
#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "base/string_util.h"
#include "chase/bulk.h"
#include "chase/chase.h"
#include "chase/control.h"
#include "chase/parallel.h"

namespace cqchase {

namespace {

using SteadyClock = std::chrono::steady_clock;

double MsSince(SteadyClock::time_point start) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - start)
      .count();
}

// One pending (conjunct, IND) application, in scalar selection order.
// Phases communicate exclusively through these: phase 1 fills the decision
// fields (each class writes only its own pairs), phase 2a fills new_id.
struct ParallelPair {
  uint64_t source_id = 0;
  uint32_t ind = 0;
  uint32_t cls = 0;  // witness class (rhs relation, first-appearance order)
  // Phase 1 decision:
  bool mint = false;          // IND chase rule fires (vs cross arc)
  bool witness_real = false;  // cross witness is a pre-sweep conjunct
  uint64_t witness = 0;       // conjunct id if real, else in-class mint seq
  uint32_t seq = 0;           // class-local mint sequence number (mints only)
  Fact created;               // provisional minted fact; invalid Term = a
                              // fresh NDV to be minted at commit
  // Phase 2a reservation:
  uint64_t new_id = 0;  // the exact id the scalar core would assign
};

// Phase-1 cross-thread poll outcome (phase 1 itself never touches
// Chase::PollControl — control_polls_ is not atomic).
enum class FrontierTrip : uint32_t {
  kNone = 0,
  kCancelled = 1,
  kDeadline = 2,
};

}  // namespace

Result<bool> Chase::RunLevelFrontier(uint32_t effective) {
  BulkState& b = *bulk_;
  const std::vector<InclusionDependency>& inds = deps_->inds();
  if (inds.empty()) return false;
  const size_t words = considered_.words_per_row();

  // --- Phase 0: rebuild witnesses if stale, snapshot the frontier. --------
  const SteadyClock::time_point retain_start = SteadyClock::now();
  if (b.witness_dirty) RebuildWitnessGroups();

  // Identical frontier selection to RunLevelBatch: alive conjuncts at the
  // minimum level below `effective` with unconsidered applicable INDs.
  uint32_t frontier_level = std::numeric_limits<uint32_t>::max();
  std::vector<uint64_t> frontier;
  for (const ChaseConjunct& c : conjuncts_) {
    if (!c.alive || c.level >= effective || c.level > frontier_level) continue;
    const std::vector<uint64_t>& mask = b.applicable_mask[c.fact.relation];
    if (mask.empty()) continue;
    const uint64_t* row = considered_.Row(c.id);
    bool pending = false;
    for (size_t w = 0; w < words && !pending; ++w) {
      pending = (mask[w] & ~(row != nullptr ? row[w] : 0)) != 0;
    }
    if (!pending) continue;
    if (c.level < frontier_level) {
      frontier_level = c.level;
      frontier.clear();
    }
    frontier.push_back(c.id);
  }
  if (frontier.empty()) {
    stats_.retain_ms += MsSince(retain_start);
    return false;
  }
  std::sort(frontier.begin(), frontier.end(), [&](uint64_t x, uint64_t y) {
    const Fact& fx = conjuncts_[IndexOfId(x)].fact;
    const Fact& fy = conjuncts_[IndexOfId(y)].fact;
    if (fx != fy) return fx < fy;
    return x < y;
  });

  // Snapshot every pending pair in the scalar (level, fact, id, ind) order.
  // The snapshot is exact: within a sweep, considered_.Set(k, s) only flips
  // bits on s's own row, after s's pending set was read — so no pair's
  // pending status depends on processing another pair.
  std::vector<ParallelPair> pairs;
  std::vector<RelationId> class_relation;  // cls -> rhs relation
  std::vector<std::vector<size_t>> class_pairs;  // cls -> pair indexes
  std::vector<uint32_t> class_of_relation(catalog_->num_relations(),
                                          BulkState::kPrunedGroup);
  std::vector<bool> ind_present(inds.size(), false);
  for (const uint64_t source_id : frontier) {
    const std::vector<uint64_t>& mask =
        b.applicable_mask[conjuncts_[IndexOfId(source_id)].fact.relation];
    const uint64_t* row = considered_.Row(source_id);
    for (size_t w = 0; w < words; ++w) {
      uint64_t bits = mask[w] & ~(row != nullptr ? row[w] : 0);
      while (bits != 0) {
        const uint32_t k = static_cast<uint32_t>(
            w * 64 + static_cast<size_t>(__builtin_ctzll(bits)));
        bits &= bits - 1;
        const RelationId rel = inds[k].rhs_relation;
        uint32_t& cls = class_of_relation[rel];
        if (cls == BulkState::kPrunedGroup) {
          cls = static_cast<uint32_t>(class_relation.size());
          class_relation.push_back(rel);
          class_pairs.emplace_back();
        }
        class_pairs[cls].push_back(pairs.size());
        ParallelPair p;
        p.source_id = source_id;
        p.ind = k;
        p.cls = cls;
        pairs.push_back(std::move(p));
        ind_present[k] = true;
      }
    }
  }
  stats_.retain_ms += MsSince(retain_start);
  if (pairs.size() < limits_.parallel_min_pairs) {
    ++stats_.parallel_small_levels;
    return RunLevelBatch(effective);
  }

  // --- Phase 1: class-parallel witness decisions (read-only on shared
  // state; each task writes only its own class's pairs). -------------------
  const SteadyClock::time_point plan_start = SteadyClock::now();
  std::atomic<uint32_t> trip_flag{
      static_cast<uint32_t>(FrontierTrip::kNone)};

  auto class_task = [&](uint32_t cls) {
    // Overlay of this class's in-sweep mints over the shared group indexes:
    // (group, projection) -> mint pair indexes in class (= mint-seq) order.
    // Only all-valid projections are registered — a projection containing a
    // fresh NDV can never equal a probe key built from pre-existing terms.
    std::map<std::pair<uint32_t, std::vector<Term>>, std::vector<size_t>>
        overlay;

    // Comparators over provisional facts (same relation; an invalid term is
    // a fresh NDV yet to be minted). Validity rests on two invariants:
    // fresh NDVs are minted above every term in existence (NdvShard blocks),
    // and commit mints fact-by-fact in seq order, so NDV ids order by seq
    // and, within a fact, by column.
    auto prov_less_real = [](const ParallelPair& a, const Fact& real) {
      for (size_t c = 0; c < a.created.terms.size(); ++c) {
        const Term t = a.created.terms[c];
        if (!t.is_valid()) return false;  // fresh > any existing term
        if (t != real.terms[c]) return t < real.terms[c];
      }
      return false;  // equal facts: the real conjunct's id is smaller
    };
    auto prov_less_prov = [](const ParallelPair& a, const ParallelPair& o) {
      for (size_t c = 0; c < a.created.terms.size(); ++c) {
        const bool fa = !a.created.terms[c].is_valid();
        const bool fo = !o.created.terms[c].is_valid();
        if (!fa && !fo) {
          if (a.created.terms[c] != o.created.terms[c]) {
            return a.created.terms[c] < o.created.terms[c];
          }
          continue;
        }
        if (fa && fo) {
          if (a.seq != o.seq) return a.seq < o.seq;
          continue;
        }
        return fo;  // exactly one fresh; the fact with the real term wins
      }
      return false;  // identical only if the same pair
    };

    std::vector<Term> x_values;
    uint32_t next_seq = 0;
    size_t polls = 0;
    for (const size_t pi : class_pairs[cls]) {
      if ((polls++ & 0xFF) == 0) {
        if (control_ != nullptr) {
          if (control_->cancelled()) {
            trip_flag.store(static_cast<uint32_t>(FrontierTrip::kCancelled),
                            std::memory_order_relaxed);
          } else if (control_->deadline_passed()) {
            trip_flag.store(static_cast<uint32_t>(FrontierTrip::kDeadline),
                            std::memory_order_relaxed);
          }
        }
        if (trip_flag.load(std::memory_order_relaxed) !=
            static_cast<uint32_t>(FrontierTrip::kNone)) {
          return;
        }
      }
      ParallelPair& p = pairs[pi];
      const InclusionDependency& ind = inds[p.ind];
      const Fact& source_fact = conjuncts_[IndexOfId(p.source_id)].fact;
      x_values.clear();
      for (uint32_t c : ind.lhs_columns) {
        x_values.push_back(source_fact.terms[c]);
      }
      const bool fresh = b.ind_has_fresh_columns[p.ind];

      // Witness probe: deterministic min (fact, id) over the shared group
      // index (pre-sweep conjuncts) and the overlay (earlier in-class
      // mints). Skipped when the probe cannot affect the decision — the
      // O-chase mints regardless when the IND has fresh columns.
      bool have_witness = false;
      bool witness_is_real = false;
      uint64_t witness_id = 0;
      const Fact* witness_fact = nullptr;  // real best
      size_t witness_pair = 0;             // provisional best
      if (variant_ == ChaseVariant::kRequired || !fresh) {
        const uint32_t g = b.group_of_ind[p.ind];
        const BulkState::WitnessGroup& group = b.groups[g];
        const auto it = group.index.find(x_values);
        if (it != group.index.end() && !it->second.empty()) {
          have_witness = true;
          witness_is_real = true;
          witness_fact = &it->second.begin()->first;
          witness_id = it->second.begin()->second;
        }
        const auto ov = overlay.find({g, x_values});
        if (ov != overlay.end()) {
          for (const size_t cand : ov->second) {
            const bool better =
                !have_witness ||
                (witness_is_real
                     ? prov_less_real(pairs[cand], *witness_fact)
                     : prov_less_prov(pairs[cand], pairs[witness_pair]));
            if (better) {
              have_witness = true;
              witness_is_real = false;
              witness_pair = cand;
            }
          }
        }
      }

      // Same decision rule as the scalar/bulk cores: cross to the witness
      // iff one exists and (R-chase, or the mint would be an exact dup).
      if (have_witness &&
          (variant_ == ChaseVariant::kRequired || !fresh)) {
        p.mint = false;
        p.witness_real = witness_is_real;
        p.witness =
            witness_is_real ? witness_id : uint64_t{pairs[witness_pair].seq};
        continue;
      }
      p.mint = true;
      p.seq = next_seq++;
      p.created.relation = ind.rhs_relation;
      p.created.terms.assign(catalog_->arity(ind.rhs_relation), Term());
      for (size_t i = 0; i < ind.rhs_columns.size(); ++i) {
        p.created.terms[ind.rhs_columns[i]] = x_values[i];
      }
      for (const uint32_t g : b.groups_of_relation[ind.rhs_relation]) {
        const BulkState::WitnessGroup& group = b.groups[g];
        std::vector<Term> projection;
        projection.reserve(group.columns.size());
        bool all_valid = true;
        for (const uint32_t col : group.columns) {
          const Term t = p.created.terms[col];
          if (!t.is_valid()) {
            all_valid = false;
            break;
          }
          projection.push_back(t);
        }
        if (all_valid) {
          overlay[{g, std::move(projection)}].push_back(pi);
        }
      }
    }
  };

  // Launch depth-layer by depth-layer per SigmaGraph::frontiers() (via the
  // precomputed BulkState::ind_depth), barrier per layer.
  std::map<uint32_t, std::vector<uint32_t>> layers;  // depth -> classes
  for (uint32_t cls = 0; cls < class_relation.size(); ++cls) {
    uint32_t depth = std::numeric_limits<uint32_t>::max();
    for (const size_t pi : class_pairs[cls]) {
      depth = std::min(depth, b.ind_depth[pairs[pi].ind]);
    }
    layers[depth].push_back(cls);
  }
  uint64_t sweep_layers = 0;
  uint64_t sweep_max_width = 0;
  auto run_tasks = [&](std::vector<std::function<void()>> tasks) {
    if (limits_.runner != nullptr && tasks.size() > 1) {
      limits_.runner->RunAll(std::move(tasks));
    } else {
      for (auto& task : tasks) task();
    }
  };
  for (const auto& [depth, classes] : layers) {
    ++sweep_layers;
    sweep_max_width = std::max<uint64_t>(sweep_max_width, classes.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(classes.size());
    for (const uint32_t cls : classes) {
      tasks.push_back([&class_task, cls] { class_task(cls); });
    }
    run_tasks(std::move(tasks));
    const auto tripped =
        static_cast<FrontierTrip>(trip_flag.load(std::memory_order_relaxed));
    if (tripped != FrontierTrip::kNone) {
      // Nothing has been mutated; the sweep simply never happened.
      stats_.plan_ms += MsSince(plan_start);
      return tripped == FrontierTrip::kCancelled
                 ? Status::Cancelled("request cancelled")
                 : Status::DeadlineExceeded("request deadline exceeded");
    }
  }

  // --- Phase 2a: sequential pure simulation — reserve the exact scalar id
  // sequence, predict limit trips, shadow the incremental FD check. --------
  enum class PlanTrip { kNone, kSteps, kConjuncts };
  PlanTrip plan_trip = PlanTrip::kNone;
  size_t plan_end = pairs.size();
  uint64_t sim_id = next_id_;
  size_t sim_conjuncts = conjuncts_.size();
  const uint64_t base_steps = stats_.steps;
  const bool have_fds = !deps_->fds().empty();
  // Per-FD shadow of what the incremental phase would insert/adopt during
  // the sweep; values are mint pair indexes. Keys containing a fresh NDV
  // are skipped: such a key can only equal a key containing the very same
  // NDV, i.e. its own fact's.
  std::vector<std::map<std::vector<Term>, size_t>> shadow(
      have_fds ? deps_->fds().size() : 0);
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (base_steps + i + 1 > limits_.max_steps) {
      plan_trip = PlanTrip::kSteps;
      plan_end = i;
      break;
    }
    ParallelPair& p = pairs[i];
    if (!p.mint) continue;
    if (sim_conjuncts >= limits_.max_conjuncts) {
      plan_trip = PlanTrip::kConjuncts;
      plan_end = i;
      break;
    }
    p.new_id = sim_id++;
    ++sim_conjuncts;
    if (!have_fds) continue;
    bool merge_predicted = false;
    for (uint32_t fd_i = 0; fd_i < deps_->fds().size() && !merge_predicted;
         ++fd_i) {
      const FunctionalDependency& fd = deps_->fds()[fd_i];
      if (fd.relation != p.created.relation) continue;
      std::vector<Term> key;
      key.reserve(fd.lhs.size());
      bool key_valid = true;
      for (const uint32_t col : fd.lhs) {
        const Term t = p.created.terms[col];
        if (!t.is_valid()) {
          key_valid = false;
          break;
        }
        key.push_back(t);
      }
      if (!key_valid) continue;
      const Term rhs = p.created.terms[fd.rhs];
      const auto sh = shadow[fd_i].find(key);
      if (sh != shadow[fd_i].end()) {
        // Representative is an earlier in-sweep mint. Distinct mints' fresh
        // NDVs are distinct, so any fresh rhs means inequality.
        const Term other_rhs = pairs[sh->second].created.terms[fd.rhs];
        merge_predicted =
            !rhs.is_valid() || !other_rhs.is_valid() || rhs != other_rhs;
        continue;
      }
      const auto re = fd_index_[fd_i].find(key);
      if (re != fd_index_[fd_i].end()) {
        const ChaseConjunct& other = conjuncts_[IndexOfId(re->second)];
        if (other.alive) {
          // rhs-equal keeps the existing representative (emplace does not
          // overwrite), so nothing enters the shadow.
          merge_predicted =
              !rhs.is_valid() || other.fact.terms[fd.rhs] != rhs;
          continue;
        }
        // Dead representative: the incremental phase adopts the new mint.
      }
      shadow[fd_i].emplace(std::move(key), i);
    }
    if (merge_predicted) {
      // A merge in this level: discard the (pure) plan and replay the whole
      // level through the serial bulk path, which handles the merge the
      // scalar way natively. Byte-identical by bulk's own parity argument.
      ++stats_.parallel_serialized_levels;
      stats_.plan_ms += MsSince(plan_start);
      return RunLevelBatch(effective);
    }
  }
  // The planned ids, per class in mint-seq order, for resolving provisional
  // cross witnesses at commit. A committed cross always points at an
  // earlier pair, so its witness mint is inside the plan too.
  std::vector<std::vector<uint64_t>> class_ids(class_relation.size());
  for (size_t i = 0; i < plan_end; ++i) {
    if (pairs[i].mint) class_ids[pairs[i].cls].push_back(pairs[i].new_id);
  }
  stats_.plan_ms += MsSince(plan_start);

  // --- Phase 2b: sequential commit of the planned prefix. -----------------
  ++stats_.bulk_batches;
  stats_.max_batch_rows =
      std::max<uint64_t>(stats_.max_batch_rows, frontier.size());
  ++stats_.parallel_sweeps;
  stats_.parallel_depth_layers += sweep_layers;
  stats_.parallel_max_depth_width =
      std::max(stats_.parallel_max_depth_width, sweep_max_width);
  for (const bool present : ind_present) {
    if (present) ++stats_.parallel_batches;
  }

  std::vector<ColumnSegment> acc(inds.size());
  struct SweepGuard {
    Chase* chase;
    std::vector<ColumnSegment>* acc;
    SteadyClock::time_point join_start = SteadyClock::now();
    ~SweepGuard() {
      for (ColumnSegment& seg : *acc) {
        if (seg.rows() == 0) continue;
        ++chase->stats_.segments_built;
        chase->segments_.Add(std::move(seg));
      }
      chase->stats_.join_ms += MsSince(join_start);
    }
  } sweep_guard{this, &acc};

  for (size_t i = 0; i < plan_end; ++i) {
    ParallelPair& p = pairs[i];
    // Same per-pair sequence as RunLevelBatch, with probe/decision replaced
    // by the precomputed plan. Limit trips cannot occur before plan_end —
    // the simulation counted identically.
    {
      const Status st = PollControl();
      if (!st.ok()) {
        // Committed mints are not in the witness groups yet; rebuild lazily.
        b.witness_dirty = true;
        return st;
      }
    }
    ++stats_.steps;
    ++stats_.bulk_ind_applications;
    considered_.Set(p.ind, p.source_id);
    if (!p.mint) {
      const uint64_t witness_id = p.witness_real
                                      ? p.witness
                                      : class_ids[p.cls][p.witness];
      MarkIndUsed(p.ind);
      arcs_.push_back(ChaseArc{p.source_id, witness_id, p.ind, /*cross=*/true});
      continue;
    }
    const InclusionDependency& ind = inds[p.ind];
    const uint32_t new_level = frontier_level + 1;
    Fact created = std::move(p.created);
    for (uint32_t col = 0; col < created.terms.size(); ++col) {
      if (!created.terms[col].is_valid()) {
        created.terms[col] = ndv_shard_.MakeChaseNdv(
            NdvProvenance{col, p.source_id, p.ind, new_level});
      }
    }
    const uint64_t new_id = next_id_++;
    assert(new_id == p.new_id);
    (void)new_id;
    ColumnSegment& seg = acc[p.ind];
    if (seg.rows() == 0) {
      seg.level = new_level;
      seg.ind_index = p.ind;
      seg.relation = ind.rhs_relation;
    }
    seg.AppendRow(created, p.new_id, p.source_id);
    conjuncts_.push_back(ChaseConjunct{p.new_id, std::move(created), new_level,
                                       /*alive=*/true, p.source_id, p.ind});
    MarkIndUsed(p.ind);
    arcs_.push_back(ChaseArc{p.source_id, p.new_id, p.ind, /*cross=*/false});
    fd_queue_.push_back(p.new_id);
    if (have_fds) {
      // The real incremental FD bookkeeping (emplace / dead-rep adoption),
      // which the simulation predicted to be merge-free. If it was wrong and
      // a merge fires anyway, everything committed so far is exactly what
      // the bulk core would have produced — abort the sweep like bulk does.
      const Status st = RunFdPhase();
      if (!st.ok()) {
        b.witness_dirty = true;
        return st;
      }
      if (outcome_ == ChaseOutcome::kEmptyQuery || b.witness_dirty) {
        return true;
      }
    }
  }

  // --- Phase 3: class-parallel merge of committed mints into the shared
  // witness groups (disjoint relation -> disjoint groups), one barrier. ----
  {
    std::vector<std::function<void()>> tasks;
    for (uint32_t cls = 0; cls < class_ids.size(); ++cls) {
      if (class_ids[cls].empty()) continue;
      tasks.push_back([this, &class_ids, cls] {
        for (const uint64_t id : class_ids[cls]) {
          AddToWitnessGroups(conjuncts_[IndexOfId(id)]);
        }
      });
    }
    run_tasks(std::move(tasks));
  }

  // --- Predicted limit trip: replay the tripping pair's scalar side
  // effects (witness groups are already current, matching bulk). -----------
  if (plan_trip != PlanTrip::kNone) {
    const ParallelPair& p = pairs[plan_end];
    CQCHASE_RETURN_IF_ERROR(PollControl());
    ++stats_.steps;
    ++stats_.bulk_ind_applications;
    if (plan_trip == PlanTrip::kSteps) {
      return Status::ResourceExhausted(
          StrCat("chase exceeded max_steps=", limits_.max_steps));
    }
    considered_.Set(p.ind, p.source_id);
    // The scalar sequence mints the fact's fresh NDVs before noticing the
    // conjunct limit; those ids are spent.
    for (uint32_t col = 0; col < p.created.terms.size(); ++col) {
      if (!p.created.terms[col].is_valid()) {
        ndv_shard_.MakeChaseNdv(
            NdvProvenance{col, p.source_id, p.ind, frontier_level + 1});
      }
    }
    return Status::ResourceExhausted(
        StrCat("chase exceeded max_conjuncts=", limits_.max_conjuncts));
  }
  return true;
}

Result<ChaseOutcome> Chase::ParallelExpandToLevel(uint32_t effective) {
  if (bulk_ == nullptr) PrepareBulk();
  while (true) {
    CQCHASE_RETURN_IF_ERROR(PollControl());
    CQCHASE_RETURN_IF_ERROR(RunFdPhase());
    if (outcome_ == ChaseOutcome::kEmptyQuery) return outcome_;
    CQCHASE_ASSIGN_OR_RETURN(bool progressed, RunLevelFrontier(effective));
    if (!progressed) break;
  }
  outcome_ = BulkHasPendingWork(std::numeric_limits<uint32_t>::max())
                 ? ChaseOutcome::kTruncated
                 : ChaseOutcome::kSaturated;
  return outcome_;
}

}  // namespace cqchase
