#include "chase/chase.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>
#include <map>

#include "base/string_util.h"
#include "chase/bulk.h"

namespace cqchase {

Chase::Chase(const Catalog* catalog, SymbolTable* symbols,
             const DependencySet* deps, ChaseVariant variant,
             ChaseLimits limits)
    : catalog_(catalog),
      symbols_(symbols),
      deps_(deps),
      variant_(variant),
      limits_(limits),
      ndv_shard_(symbols->CreateShard()) {
  considered_.Reset(deps_->inds().size());
  used_inds_.assign(deps_->inds().size(), false);
  used_fds_.assign(deps_->fds().size(), false);
}

// Out of line: BulkState is incomplete in chase.h.
Chase::~Chase() = default;
Chase::Chase(Chase&&) noexcept = default;
Chase& Chase::operator=(Chase&&) noexcept = default;

Status Chase::Init(const ConjunctiveQuery& query) {
  if (initialized_) {
    return Status::FailedPrecondition("Chase::Init called twice");
  }
  initialized_ = true;
  CQCHASE_RETURN_IF_ERROR(query.Validate());
  if (query.is_empty_query()) {
    outcome_ = ChaseOutcome::kEmptyQuery;
    summary_ = query.summary();
    return Status::OK();
  }
  for (const Fact& f : query.conjuncts()) {
    conjuncts_.push_back(
        ChaseConjunct{next_id_++, f, /*level=*/0, /*alive=*/true,
                      std::nullopt, std::nullopt});
  }
  summary_ = query.summary();
  return RunFdPhase();
}

Term Chase::ResolveTerm(Term t) const {
  // Follows the substitution chain; no path compression (const), chains are
  // short because SubstituteTerm rewrites facts eagerly.
  while (true) {
    auto it = substitution_.find(t);
    if (it == substitution_.end()) return t;
    t = it->second;
  }
}

size_t Chase::IndexOfId(uint64_t id) const {
  // Conjunct ids are creation-ordered and conjuncts are never erased (only
  // marked dead), so id == index.
  assert(id < conjuncts_.size() && conjuncts_[id].id == id);
  return static_cast<size_t>(id);
}

void Chase::SubstituteTerm(Term winner, Term loser) {
  assert(winner < loser);
  substitution_[loser] = winner;
  for (ChaseConjunct& c : conjuncts_) {
    if (!c.alive) continue;
    for (Term& t : c.fact.terms) {
      if (t == loser) t = winner;
    }
  }
  for (Term& t : summary_) {
    if (t == loser) t = winner;
  }
  index_dirty_ = true;  // facts changed; pending_/witness_index_ are stale
  if (bulk_ != nullptr) bulk_->witness_dirty = true;
  DedupeConjuncts();
}

void Chase::DedupeConjuncts() {
  std::map<Fact, uint64_t> first_by_fact;  // fact -> surviving id (min id)
  std::unordered_map<uint64_t, uint64_t> redirect;
  for (ChaseConjunct& c : conjuncts_) {
    if (!c.alive) continue;
    auto [it, inserted] = first_by_fact.emplace(c.fact, c.id);
    if (inserted) continue;
    // Merge c into the earlier conjunct with the identical fact. Paper: the
    // merged conjunct gets the minimum of the two levels.
    ChaseConjunct& survivor = conjuncts_[IndexOfId(it->second)];
    survivor.level = std::min(survivor.level, c.level);
    c.alive = false;
    redirect[c.id] = survivor.id;
    // The survivor inherits the dead conjunct's considered INDs: an IND
    // applied to either copy has been applied to the merged conjunct.
    considered_.Inherit(c.id, survivor.id);
  }
  if (redirect.empty()) return;
  auto target = [&](uint64_t id) {
    auto it = redirect.find(id);
    return it == redirect.end() ? id : it->second;
  };
  for (ChaseArc& arc : arcs_) {
    arc.from = target(arc.from);
    arc.to = target(arc.to);
  }
  for (ChaseConjunct& c : conjuncts_) {
    if (c.parent.has_value()) c.parent = target(*c.parent);
  }
}

bool Chase::ApplyFd(const FunctionalDependency& fd, size_t a, size_t b) {
  // Every caller passes a reference into deps_->fds(), so the lineage index
  // is pointer arithmetic — this is the single FD-merge site of all three
  // cores, which is what makes the used-FD capture core-independent.
  assert(&fd >= deps_->fds().data() &&
         &fd < deps_->fds().data() + deps_->fds().size());
  used_fds_[static_cast<size_t>(&fd - deps_->fds().data())] = true;
  Term u = conjuncts_[a].fact.terms[fd.rhs];
  Term v = conjuncts_[b].fact.terms[fd.rhs];
  assert(u != v);
  if (u.is_constant() && v.is_constant()) {
    // FD CHASE RULE, constant clash: delete all conjuncts and halt.
    for (ChaseConjunct& c : conjuncts_) c.alive = false;
    outcome_ = ChaseOutcome::kEmptyQuery;
    return false;
  }
  Term winner = std::min(u, v);  // constant < DV < NDV, then creation order
  Term loser = std::max(u, v);
  ++stats_.fd_merges;
  SubstituteTerm(winner, loser);
  return true;
}

Status Chase::RunFdPhase() {
  if (deps_->fds().empty()) return Status::OK();
  if (fd_index_dirty_) return RunFullFdPhase();
  return RunIncrementalFdPhase();
}

Status Chase::RunIncrementalFdPhase() {
  // Only conjuncts created since the last check can introduce a violation
  // (nothing else changed). A firing merge mutates facts globally, so it
  // escalates to the full phase.
  while (!fd_queue_.empty()) {
    const uint64_t id = fd_queue_.back();
    fd_queue_.pop_back();
    const ChaseConjunct& c = conjuncts_[IndexOfId(id)];
    if (!c.alive) continue;
    for (uint32_t fd_i = 0; fd_i < deps_->fds().size(); ++fd_i) {
      const FunctionalDependency& fd = deps_->fds()[fd_i];
      if (fd.relation != c.fact.relation) continue;
      std::vector<Term> key;
      key.reserve(fd.lhs.size());
      for (uint32_t col : fd.lhs) key.push_back(c.fact.terms[col]);
      auto [it, inserted] = fd_index_[fd_i].emplace(std::move(key), id);
      if (inserted || it->second == id) continue;
      const ChaseConjunct& other = conjuncts_[IndexOfId(it->second)];
      if (!other.alive) {
        it->second = id;  // stale representative: adopt the live one
        continue;
      }
      if (other.fact.terms[fd.rhs] == c.fact.terms[fd.rhs]) continue;
      ++stats_.steps;
      if (stats_.steps > limits_.max_steps) {
        return Status::ResourceExhausted(
            StrCat("chase exceeded max_steps=", limits_.max_steps));
      }
      if (!ApplyFd(fd, IndexOfId(it->second), IndexOfId(id))) {
        return Status::OK();  // constant clash: empty query
      }
      fd_index_dirty_ = true;
      return RunFullFdPhase();  // merges may cascade arbitrarily
    }
  }
  return Status::OK();
}

Status Chase::PollControl() {
  if (control_ == nullptr) return Status::OK();
  CQCHASE_RETURN_IF_ERROR(control_->CheckCancelOnly());
  if (control_polls_++ % ChaseControl::kClockPollStride == 0 &&
      control_->deadline_passed()) {
    return Status::DeadlineExceeded("request deadline exceeded");
  }
  return Status::OK();
}

Status Chase::RunFullFdPhase() {
  // One clock read per full phase, not per merge: saturation cascades are
  // the unit the fd_ms timer meters.
  const auto fd_phase_start = std::chrono::steady_clock::now();
  struct FdPhaseTimer {
    std::chrono::steady_clock::time_point start;
    ChaseStats* stats;
    ~FdPhaseTimer() {
      stats->fd_ms += std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    }
  } fd_phase_timer{fd_phase_start, &stats_};
  // Repeatedly find a pair of conjuncts with an applicable FD and apply it.
  // The pair is located with one pass per FD over a (lhs-values -> conjunct)
  // map rather than the paper's all-pairs scan; since the FD chase is
  // confluent and the merge representative is the lexicographic minimum of
  // the final equivalence class, the terminal result is the same query the
  // paper's lexicographic-first-pair discipline produces.
  while (outcome_ != ChaseOutcome::kEmptyQuery) {
    // An FD merge cascade can run arbitrarily long on its own; keep the
    // cancellation/deadline poll inside it, not only between IND steps.
    CQCHASE_RETURN_IF_ERROR(PollControl());
    bool applied = false;
    for (uint32_t fd_i = 0; fd_i < deps_->fds().size() && !applied; ++fd_i) {
      const FunctionalDependency& fd = deps_->fds()[fd_i];
      // Deterministic: iterate conjuncts in (fact, id) order so the chosen
      // pair does not depend on container layout.
      std::map<std::vector<Term>, size_t> by_lhs;
      std::vector<size_t> order;
      for (size_t i = 0; i < conjuncts_.size(); ++i) {
        if (conjuncts_[i].alive && conjuncts_[i].fact.relation == fd.relation) {
          order.push_back(i);
        }
      }
      std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        if (conjuncts_[x].fact != conjuncts_[y].fact) {
          return conjuncts_[x].fact < conjuncts_[y].fact;
        }
        return conjuncts_[x].id < conjuncts_[y].id;
      });
      for (size_t i : order) {
        const Fact& f = conjuncts_[i].fact;
        std::vector<Term> key;
        key.reserve(fd.lhs.size());
        for (uint32_t c : fd.lhs) key.push_back(f.terms[c]);
        auto [it, inserted] = by_lhs.emplace(std::move(key), i);
        if (inserted) continue;
        const Fact& g = conjuncts_[it->second].fact;
        if (g.terms[fd.rhs] == f.terms[fd.rhs]) continue;
        ++stats_.steps;
        if (stats_.steps > limits_.max_steps) {
          return Status::ResourceExhausted(
              StrCat("chase exceeded max_steps=", limits_.max_steps));
        }
        if (!ApplyFd(fd, it->second, i)) return Status::OK();
        applied = true;
        break;
      }
    }
    if (!applied) break;
  }
  // Saturated (or empty): rebuild the incremental FD index.
  fd_index_.assign(deps_->fds().size(), {});
  fd_queue_.clear();
  if (outcome_ != ChaseOutcome::kEmptyQuery) {
    for (const ChaseConjunct& c : conjuncts_) {
      if (!c.alive) continue;
      for (uint32_t fd_i = 0; fd_i < deps_->fds().size(); ++fd_i) {
        const FunctionalDependency& fd = deps_->fds()[fd_i];
        if (fd.relation != c.fact.relation) continue;
        std::vector<Term> key;
        key.reserve(fd.lhs.size());
        for (uint32_t col : fd.lhs) key.push_back(c.fact.terms[col]);
        fd_index_[fd_i].emplace(std::move(key), c.id);
      }
    }
  }
  fd_index_dirty_ = false;
  return Status::OK();
}

void Chase::RebuildIndices() {
  ++stats_.index_rebuilds;
  pending_.clear();
  witness_index_.assign(
      deps_->inds().size(),
      std::map<std::vector<Term>, std::set<std::pair<Fact, uint64_t>>>());
  for (const ChaseConjunct& c : conjuncts_) {
    if (c.alive) IndexNewConjunct(c);
  }
  index_dirty_ = false;
}

void Chase::IndexNewConjunct(const ChaseConjunct& conjunct) {
  for (uint32_t k = 0; k < deps_->inds().size(); ++k) {
    const InclusionDependency& ind = deps_->inds()[k];
    if (ind.lhs_relation == conjunct.fact.relation &&
        !considered_.Test(k, conjunct.id)) {
      pending_.insert(
          PendingStep{conjunct.level, conjunct.fact, conjunct.id, k});
    }
    if (ind.rhs_relation == conjunct.fact.relation) {
      std::vector<Term> projection;
      projection.reserve(ind.rhs_columns.size());
      for (uint32_t col : ind.rhs_columns) {
        projection.push_back(conjunct.fact.terms[col]);
      }
      witness_index_[k][std::move(projection)].emplace(conjunct.fact,
                                                       conjunct.id);
    }
  }
}

std::optional<uint64_t> Chase::FindWitness(uint32_t ind_index,
                                           const std::vector<Term>& x_values) {
  if (index_dirty_) RebuildIndices();
  const auto& by_projection = witness_index_[ind_index];
  auto it = by_projection.find(x_values);
  if (it == by_projection.end() || it->second.empty()) return std::nullopt;
  return it->second.begin()->second;  // min (fact, id): the paper's witness
}

bool Chase::HasPendingIndWork(uint32_t level) {
  if (index_dirty_) RebuildIndices();
  return !pending_.empty() && pending_.begin()->level < level;
}

Result<bool> Chase::OneIndStep(uint32_t level) {
  if (deps_->inds().empty()) return false;
  if (index_dirty_) RebuildIndices();
  // pending_ is ordered by (level, fact, id, ind): its first entry is the
  // lexicographically first minimum-level conjunct with an unconsidered
  // applicable IND, and the first such IND for it.
  if (pending_.empty() || pending_.begin()->level >= level) return false;
  const PendingStep step = *pending_.begin();
  pending_.erase(pending_.begin());

  ++stats_.steps;
  if (stats_.steps > limits_.max_steps) {
    return Status::ResourceExhausted(
        StrCat("chase exceeded max_steps=", limits_.max_steps));
  }

  ChaseConjunct& source = conjuncts_[IndexOfId(step.id)];
  const uint32_t chosen_ind = step.ind;
  const InclusionDependency& ind = deps_->inds()[chosen_ind];
  considered_.Set(chosen_ind, source.id);

  std::vector<Term> x_values;
  x_values.reserve(ind.lhs_columns.size());
  for (uint32_t c : ind.lhs_columns) x_values.push_back(source.fact.terms[c]);

  std::optional<uint64_t> witness = FindWitness(chosen_ind, x_values);
  const size_t rhs_arity = catalog_->arity(ind.rhs_relation);
  const bool has_fresh_columns = ind.width() < rhs_arity;

  if (variant_ == ChaseVariant::kRequired ||
      (witness.has_value() && !has_fresh_columns)) {
    // R-chase: application is required only without a witness. O-chase with
    // no fresh columns: applying would recreate the witness verbatim.
    if (witness.has_value()) {
      MarkIndUsed(chosen_ind);
      arcs_.push_back(
          ChaseArc{source.id, *witness, chosen_ind, /*cross=*/true});
      return true;
    }
  }

  // IND CHASE RULE: build c' with c'[Y] = c[X], fresh NDVs elsewhere.
  const uint32_t new_level = source.level + 1;
  const uint64_t source_id = source.id;
  Fact created;
  created.relation = ind.rhs_relation;
  created.terms.resize(rhs_arity);
  for (size_t k = 0; k < ind.rhs_columns.size(); ++k) {
    created.terms[ind.rhs_columns[k]] = x_values[k];
  }
  for (uint32_t col = 0; col < rhs_arity; ++col) {
    if (!created.terms[col].is_valid()) {
      created.terms[col] = ndv_shard_.MakeChaseNdv(NdvProvenance{
          col, source_id, chosen_ind, new_level});
    }
  }
  if (conjuncts_.size() >= limits_.max_conjuncts) {
    return Status::ResourceExhausted(
        StrCat("chase exceeded max_conjuncts=", limits_.max_conjuncts));
  }
  const uint64_t new_id = next_id_++;
  // Note: push_back may invalidate `source`; use source_id afterwards.
  conjuncts_.push_back(ChaseConjunct{new_id, std::move(created), new_level,
                                     /*alive=*/true, source_id, chosen_ind});
  MarkIndUsed(chosen_ind);
  arcs_.push_back(ChaseArc{source_id, new_id, chosen_ind, /*cross=*/false});
  if (!index_dirty_) IndexNewConjunct(conjuncts_.back());
  fd_queue_.push_back(new_id);
  return true;
}

Result<ChaseOutcome> Chase::ExpandToLevel(uint32_t level) {
  if (!initialized_) {
    return Status::FailedPrecondition("Chase::Init not called");
  }
  if (outcome_ == ChaseOutcome::kEmptyQuery) return outcome_;
  const uint32_t effective = std::min(level, limits_.max_level);
  if (limits_.core == ChaseCoreMode::kBulk) {
    return BulkExpandToLevel(effective);
  }
  if (limits_.core == ChaseCoreMode::kParallel) {
    return ParallelExpandToLevel(effective);
  }
  while (true) {
    CQCHASE_RETURN_IF_ERROR(PollControl());
    CQCHASE_RETURN_IF_ERROR(RunFdPhase());
    if (outcome_ == ChaseOutcome::kEmptyQuery) return outcome_;
    CQCHASE_ASSIGN_OR_RETURN(bool stepped, OneIndStep(effective));
    if (!stepped) break;
  }
  // No work below `effective`. Saturated iff nothing remains at any level.
  outcome_ = HasPendingIndWork(std::numeric_limits<uint32_t>::max())
                 ? ChaseOutcome::kTruncated
                 : ChaseOutcome::kSaturated;
  return outcome_;
}

std::vector<Fact> Chase::AliveFacts(std::optional<uint32_t> max_level) const {
  std::vector<Fact> out;
  for (const ChaseConjunct& c : conjuncts_) {
    if (!c.alive) continue;
    if (max_level.has_value() && c.level > *max_level) continue;
    out.push_back(c.fact);
  }
  return out;
}

std::vector<const ChaseConjunct*> Chase::AliveConjuncts() const {
  std::vector<const ChaseConjunct*> out;
  for (const ChaseConjunct& c : conjuncts_) {
    if (c.alive) out.push_back(&c);
  }
  std::sort(out.begin(), out.end(),
            [](const ChaseConjunct* a, const ChaseConjunct* b) {
              if (a->level != b->level) return a->level < b->level;
              return a->id < b->id;
            });
  return out;
}

size_t Chase::CountAtLevel(uint32_t level) const {
  size_t n = 0;
  for (const ChaseConjunct& c : conjuncts_) {
    if (c.alive && c.level == level) ++n;
  }
  return n;
}

uint32_t Chase::MaxAliveLevel() const {
  uint32_t m = 0;
  for (const ChaseConjunct& c : conjuncts_) {
    if (c.alive) m = std::max(m, c.level);
  }
  return m;
}

ConjunctiveQuery Chase::AsQuery() const {
  ConjunctiveQuery q(catalog_, symbols_);
  for (const ChaseConjunct* c : AliveConjuncts()) q.AddConjunct(c->fact);
  q.SetSummary(summary_);
  if (outcome_ == ChaseOutcome::kEmptyQuery) q.MarkEmptyQuery();
  return q;
}

Instance Chase::AsInstance() const {
  Instance instance(catalog_);
  for (const ChaseConjunct& c : conjuncts_) {
    if (c.alive) {
      Status s = instance.AddFact(c.fact);
      assert(s.ok());
      (void)s;
    }
  }
  return instance;
}

std::string Chase::ToString() const {
  std::string out = StrCat("chase (",
                           variant_ == ChaseVariant::kOblivious ? "O" : "R",
                           ", ",
                           outcome_ == ChaseOutcome::kSaturated ? "saturated"
                           : outcome_ == ChaseOutcome::kEmptyQuery
                               ? "empty-query"
                               : "truncated",
                           "):\n");
  for (const ChaseConjunct* c : AliveConjuncts()) {
    out += StrCat("  L", c->level, " #", c->id, " ",
                  c->fact.ToString(*catalog_, *symbols_), "\n");
  }
  return out;
}

Result<Chase> BuildChase(const ConjunctiveQuery& query,
                         const DependencySet& deps, SymbolTable& symbols,
                         ChaseVariant variant, ChaseLimits limits) {
  Chase chase(&query.catalog(), &symbols, &deps, variant, limits);
  CQCHASE_RETURN_IF_ERROR(chase.Init(query));
  CQCHASE_ASSIGN_OR_RETURN(ChaseOutcome outcome, chase.Run());
  (void)outcome;
  return chase;
}

}  // namespace cqchase
