#include "chase/chase_graph.h"

#include <algorithm>
#include <unordered_map>

#include "base/string_util.h"

namespace cqchase {

std::string ChaseGraphToDot(const Chase& chase) {
  // Reconstruct catalog/symbols from the chase's query view.
  ConjunctiveQuery view = chase.AsQuery();
  const Catalog& catalog = view.catalog();
  const SymbolTable& symbols = view.symbols();

  std::string out = "digraph chase {\n  rankdir=TB;\n";
  for (const ChaseConjunct* c : chase.AliveConjuncts()) {
    out += StrCat("  n", c->id, " [label=\"",
                  c->fact.ToString(catalog, symbols), "\\nL", c->level,
                  "\"];\n");
  }
  for (const ChaseArc& arc : chase.arcs()) {
    out += StrCat("  n", arc.from, " -> n", arc.to, " [label=\"i", arc.ind_index,
                  "\"", arc.cross ? ", style=dashed" : "", "];\n");
  }
  out += "}\n";
  return out;
}

std::string ChaseGraphToText(const Chase& chase) {
  ConjunctiveQuery view = chase.AsQuery();
  const Catalog& catalog = view.catalog();
  const SymbolTable& symbols = view.symbols();

  std::string out;
  uint32_t max_level = chase.MaxAliveLevel();
  std::unordered_map<uint64_t, const ChaseArc*> cross_from;
  for (const ChaseArc& arc : chase.arcs()) {
    if (arc.cross) cross_from.emplace(arc.from, &arc);
  }
  for (uint32_t level = 0; level <= max_level; ++level) {
    out += StrCat("level ", level, ":\n");
    for (const ChaseConjunct* c : chase.AliveConjuncts()) {
      if (c->level != level) continue;
      out += StrCat("  #", c->id, " ", c->fact.ToString(catalog, symbols));
      if (c->parent.has_value()) {
        out += StrCat("   <-i", *c->parent_ind, "- #", *c->parent);
      }
      auto it = cross_from.find(c->id);
      if (it != cross_from.end()) {
        out += StrCat("   [cross -i", it->second->ind_index, "-> #",
                      it->second->to, "]");
      }
      out += "\n";
    }
  }
  return out;
}

Result<Chase> FactorizedRChase(const ConjunctiveQuery& query,
                               const DependencySet& deps, SymbolTable& symbols,
                               ChaseLimits limits) {
  DependencySet fds = deps.FdsOnly();
  DependencySet inds = deps.IndsOnly();
  CQCHASE_ASSIGN_OR_RETURN(
      Chase fd_chase, BuildChase(query, fds, symbols, ChaseVariant::kRequired,
                                 limits));
  ConjunctiveQuery fd_chased = fd_chase.AsQuery();
  // The IND phase needs the dependency set to outlive the Chase; build the
  // final chase against the caller's `deps` INDs by value semantics: we
  // construct with a heap-free local copy stored inside the returned Chase's
  // dependency pointer — instead, simply require `deps` to outlive the
  // result and chase against a static view of its INDs.
  //
  // To keep lifetimes simple we chase against `deps` directly: with the
  // R-chase, FD applications after the initial phase never fire for
  // key-based Σ (Lemma 2), so chasing with all of Σ from the FD-chased query
  // is exactly R-chase_Σ[I](chase_Σ[F](Q)).
  return BuildChase(fd_chased, deps, symbols, ChaseVariant::kRequired, limits);
}

uint32_t MaxSymbolLevelSpan(const Chase& chase) {
  std::unordered_map<Term, std::pair<uint32_t, uint32_t>> spans;
  for (const ChaseConjunct* c : chase.AliveConjuncts()) {
    for (Term t : c->fact.terms) {
      auto [it, inserted] = spans.emplace(t, std::pair{c->level, c->level});
      if (!inserted) {
        it->second.first = std::min(it->second.first, c->level);
        it->second.second = std::max(it->second.second, c->level);
      }
    }
  }
  uint32_t max_span = 0;
  for (const auto& [t, span] : spans) {
    max_span = std::max(max_span, span.second - span.first);
  }
  return max_span;
}

}  // namespace cqchase
