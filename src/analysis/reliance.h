// Σ reliance analysis: a static interaction graph over the dependencies of a
// DependencySet, computed once per Σ with no chase (the VLog move — rule-level
// positive reliances and restraints, specialized to FDs+INDs).
//
// Nodes are the dependencies themselves: IND k is node k, FD i is node
// num_inds + i. Edges say "firing `from` can change what `to` does":
//
//  * kPositive  IND a -> IND b   iff rhs_relation(a) == lhs_relation(b).
//    An application of a mints a fact of its rhs relation; the IND chase rule
//    applies b to every fact of b's lhs relation, so a's output is exactly
//    the shape of b's input. (Column overlap does not refine this: the rule
//    fires on any fact of the relation, whatever terms sit in X.)
//  * kPositive  IND a -> FD f    iff rhs_relation(a) == f.relation.
//    A minted fact of f's relation can complete an FD-applicable pair.
//  * kInterference  FD f -> IND b  iff f.relation ∈ {lhs_relation(b),
//    rhs_relation(b)}. A merge rewrites facts of f's relation in place:
//    on b's lhs it changes the X-projections b copies, on b's rhs it can
//    create or destroy the witnesses the R-chase dedupes against.
//  * kInterference  FD f -> FD g  iff f.relation == g.relation (including
//    f -> f: a merge can make new pairs agree on the same relation's lhs,
//    which is why FD phases iterate to fixpoint).
//
// The FD interference edges are relation-level, like VLog's predicate
// overlap. They are *advisory* (scheduler consumers must still serialize
// merges globally, because a merge substitutes a term everywhere it occurs,
// and level-0 query conjuncts may share variables across relations — see
// ROADMAP's parallelism item). The correctness-bearing consumers below read
// only the IND->IND positive subgraph, which is exact.
//
// Derived artifacts:
//
//  * IndCriticalPath(): when the IND positive subgraph is acyclic, the
//    maximum number of INDs on any reliance path. This bounds the chase:
//    a conjunct at level L is the end of an L-step ancestry chain whose
//    consecutive INDs are reliance-linked (each mints the fact the next
//    consumes), so every chase level is <= the critical path, every chase is
//    finite, and the bounded procedure of Theorem 2 becomes a genuine
//    decision procedure for the acyclic-IND fragment even with arbitrary
//    FDs present (FD merges rewrite facts in place and only ever *lower*
//    ids/levels via dedupe — they never extend an ancestry chain). This is
//    the depth SigmaClass::kAcyclicInd dispatches on.
//  * SCC condensation with per-component longest-path depth and the frontier
//    layering frontiers(): layer d holds every component at depth d, i.e.
//    all of whose predecessors sit in layers < d. Components within one
//    layer share no reliance in either direction — the independent work
//    sets a future intra-chase scheduler executes concurrently.
//  * ReachableInds(): the closure of "which INDs can ever fire" from the
//    relations present in an initial query, used by the bulk chase core to
//    prune dead witness groups (chase/bulk.cc). An IND fires only on a fact
//    of its lhs relation; facts exist only at level 0 or as IND rhs output;
//    FD merges never introduce a new relation. So the closure over
//    lhs-present => rhs-present is exact, not heuristic: a pruned IND
//    cannot fire in *any* core, which is why pruning preserves the
//    bit-identical scalar/bulk parity contract.
//
// The analysis is pure and cached: SigmaAnalysis carries the graph by
// shared_ptr through the engine's sigma LRU (engine/sigma_class.h).
#ifndef CQCHASE_ANALYSIS_RELIANCE_H_
#define CQCHASE_ANALYSIS_RELIANCE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "deps/dependency_set.h"
#include "schema/catalog.h"

namespace cqchase {

enum class RelianceKind : uint8_t {
  kPositive = 0,      // producer can make consumer applicable
  kInterference = 1,  // FD merge can disturb consumer's input or witnesses
};

struct RelianceEdge {
  uint32_t from = 0;  // node ids: INDs first, then FDs (see SigmaGraph)
  uint32_t to = 0;
  RelianceKind kind = RelianceKind::kPositive;

  friend bool operator==(const RelianceEdge& a, const RelianceEdge& b) {
    return a.from == b.from && a.to == b.to && a.kind == b.kind;
  }
};

class SigmaGraph {
 public:
  // Pure: reads deps/catalog, keeps no pointer to either. O(|Σ|·degree)
  // construction; degree is bounded by the INDs sharing a relation.
  SigmaGraph(const DependencySet& deps, const Catalog& catalog);

  // --- Nodes ---------------------------------------------------------------
  // Node k for k < num_inds() is deps.inds()[k]; node num_inds() + i is
  // deps.fds()[i].
  size_t num_inds() const { return num_inds_; }
  size_t num_fds() const { return num_fds_; }
  size_t num_nodes() const { return num_inds_ + num_fds_; }
  bool IsIndNode(uint32_t node) const { return node < num_inds_; }

  // --- Edges ---------------------------------------------------------------
  const std::vector<RelianceEdge>& edges() const { return edges_; }
  // Successor node ids (deduped, ascending), over edges of every kind.
  const std::vector<uint32_t>& successors(uint32_t node) const {
    return adj_[node];
  }
  bool HasEdge(uint32_t from, uint32_t to, RelianceKind kind) const;

  // --- The acyclic-IND fragment -------------------------------------------
  // Longest path (counted in nodes) through the IND positive subgraph, or
  // nullopt when that subgraph has a cycle. Equals the chase-level bound:
  // every conjunct level is <= this value (see file comment). Coincides
  // with DependencySet::MaxIndPathLength (counted in arcs) because a
  // relation-level path of L arcs is a dependency-level chain of L INDs.
  std::optional<uint32_t> IndCriticalPath() const { return ind_depth_; }
  bool IndSubgraphAcyclic() const { return ind_depth_.has_value(); }

  // --- SCC condensation (the scheduler artifact) ---------------------------
  struct Component {
    std::vector<uint32_t> members;     // node ids, ascending
    std::vector<uint32_t> successors;  // component ids, ascending, deduped
    uint32_t depth = 0;  // longest path from any source component to this
    bool cyclic = false;  // size > 1, or a self-edge on the single member
  };
  // Topological order: every edge goes from a lower component index to a
  // higher one.
  const std::vector<Component>& components() const { return components_; }
  uint32_t ComponentOf(uint32_t node) const { return component_of_[node]; }
  // frontiers()[d] lists the component ids at depth d. Components in one
  // layer are pairwise reliance-independent; executing the layers in order
  // respects every edge. This is the dependency-application DAG the parallel
  // chase core schedules: ChaseCoreMode::kParallel maps each pending
  // (level, IND) batch to its IND's component depth (BulkState::ind_depth)
  // and launches one layer of witness-class tasks per depth, barrier
  // between layers. Note the mapping is *scheduling* structure only —
  // same-depth INDs may still share an rhs relation and thus a witness
  // index, so the correctness unit inside a layer is the rhs-relation
  // witness class, not the component (see chase/parallel.cc).
  const std::vector<std::vector<uint32_t>>& frontiers() const {
    return frontiers_;
  }

  // --- Pruning (the bulk-core consumer) ------------------------------------
  // `relations_present[r]` marks relations with at least one initial fact.
  // Returns, per IND, whether it can ever become applicable: the fixpoint of
  // present-lhs => present-rhs over the INDs. Exact (see file comment).
  std::vector<bool> ReachableInds(
      const std::vector<bool>& relations_present) const;

  // Order-insensitive-free fingerprint of the whole graph (nodes, edges,
  // critical path): stable across runs for a fixed Σ, reported by benches so
  // a drifting analysis shows up as a diff in the JSON record.
  uint64_t Fingerprint() const { return fingerprint_; }

  // Human-readable dump, e.g. "ind0->ind1+ ind1->fd0+ fd0~>ind1" (+ for
  // positive, ~> for interference); debugging and test diagnostics.
  std::string ToString() const;

 private:
  void BuildEdges(const DependencySet& deps);
  void ComputeIndCriticalPath();
  void Condense();
  uint64_t ComputeFingerprint() const;

  size_t num_inds_ = 0;
  size_t num_fds_ = 0;
  std::vector<RelationId> ind_lhs_rel_;
  std::vector<RelationId> ind_rhs_rel_;
  size_t num_relations_ = 0;
  std::vector<RelianceEdge> edges_;
  std::vector<std::vector<uint32_t>> adj_;
  std::optional<uint32_t> ind_depth_;
  std::vector<Component> components_;
  std::vector<uint32_t> component_of_;
  std::vector<std::vector<uint32_t>> frontiers_;
  uint64_t fingerprint_ = 0;
};

}  // namespace cqchase

#endif  // CQCHASE_ANALYSIS_RELIANCE_H_
