#include "analysis/delta.h"

#include <algorithm>

#include "base/string_util.h"

namespace cqchase {

namespace {

inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

inline uint64_t Mix(uint64_t h, uint64_t v) {
  // Byte-at-a-time FNV-1a over the value's little-endian bytes: the same
  // scheme SigmaGraph::ComputeFingerprint uses, so the two stay comparable
  // in spirit (not in value — different domains, different tags).
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

uint64_t FingerprintFd(const FunctionalDependency& fd) {
  uint64_t h = kFnvOffset;
  h = Mix(h, 'F');  // domain separation from INDs
  h = Mix(h, fd.relation);
  h = Mix(h, fd.lhs.size());
  for (uint32_t c : fd.lhs) h = Mix(h, c);
  h = Mix(h, fd.rhs);
  return h;
}

uint64_t FingerprintInd(const InclusionDependency& ind) {
  uint64_t h = kFnvOffset;
  h = Mix(h, 'I');
  h = Mix(h, ind.lhs_relation);
  h = Mix(h, ind.lhs_columns.size());
  for (uint32_t c : ind.lhs_columns) h = Mix(h, c);
  h = Mix(h, ind.rhs_relation);
  h = Mix(h, ind.rhs_columns.size());
  for (uint32_t c : ind.rhs_columns) h = Mix(h, c);
  return h;
}

std::vector<uint64_t> DependencyFingerprints(const DependencySet& deps) {
  std::vector<uint64_t> out;
  out.reserve(deps.size());
  for (const InclusionDependency& ind : deps.inds()) {
    out.push_back(FingerprintInd(ind));
  }
  for (const FunctionalDependency& fd : deps.fds()) {
    out.push_back(FingerprintFd(fd));
  }
  return out;
}

std::vector<uint64_t> UsedDependencyFingerprints(
    const DependencySet& deps, const std::vector<bool>& used_inds,
    const std::vector<bool>& used_fds) {
  std::vector<uint64_t> out;
  const auto& inds = deps.inds();
  const auto& fds = deps.fds();
  for (size_t k = 0; k < inds.size() && k < used_inds.size(); ++k) {
    if (used_inds[k]) out.push_back(FingerprintInd(inds[k]));
  }
  for (size_t i = 0; i < fds.size() && i < used_fds.size(); ++i) {
    if (used_fds[i]) out.push_back(FingerprintFd(fds[i]));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

uint64_t SigmaFingerprint(const DependencySet& deps) {
  // XOR of remixed per-dependency fingerprints: commutative (insertion order
  // is not identity) but not naively self-cancelling — two *distinct*
  // dependencies cancel only on a genuine 64-bit collision of the remix.
  uint64_t acc = 0;
  for (uint64_t fp : DependencyFingerprints(deps)) {
    acc ^= Mix(kFnvOffset, fp);
  }
  return Mix(Mix(acc, deps.inds().size()), deps.fds().size());
}

bool SigmaDelta::Removed(uint64_t fp) const {
  return std::binary_search(removed.begin(), removed.end(), fp);
}

std::string SigmaDelta::ToString() const {
  return StrCat("delta{+", added.size(), " -", removed.size(), " =",
                unchanged.size(), "}");
}

SigmaDelta ComputeSigmaDelta(const DependencySet& old_deps,
                             const DependencySet& new_deps) {
  std::vector<uint64_t> old_fps = DependencyFingerprints(old_deps);
  std::vector<uint64_t> new_fps = DependencyFingerprints(new_deps);
  std::sort(old_fps.begin(), old_fps.end());
  std::sort(new_fps.begin(), new_fps.end());
  // DependencySet dedupes on insert, but fingerprints of distinct
  // dependencies could still collide; unique() keeps the set semantics the
  // comment in delta.h promises either way.
  old_fps.erase(std::unique(old_fps.begin(), old_fps.end()), old_fps.end());
  new_fps.erase(std::unique(new_fps.begin(), new_fps.end()), new_fps.end());

  SigmaDelta delta;
  std::set_difference(new_fps.begin(), new_fps.end(), old_fps.begin(),
                      old_fps.end(), std::back_inserter(delta.added));
  std::set_difference(old_fps.begin(), old_fps.end(), new_fps.begin(),
                      new_fps.end(), std::back_inserter(delta.removed));
  std::set_intersection(old_fps.begin(), old_fps.end(), new_fps.begin(),
                        new_fps.end(), std::back_inserter(delta.unchanged));
  return delta;
}

}  // namespace cqchase
