#include "analysis/reliance.h"

#include <algorithm>

#include "base/string_util.h"

namespace cqchase {

namespace {

// FNV-1a over 64-bit lanes; the graph fingerprint must be stable across
// runs and platforms, so it avoids std::hash.
uint64_t Mix(uint64_t h, uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (byte * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

SigmaGraph::SigmaGraph(const DependencySet& deps, const Catalog& catalog) {
  num_inds_ = deps.inds().size();
  num_fds_ = deps.fds().size();
  num_relations_ = catalog.num_relations();
  ind_lhs_rel_.reserve(num_inds_);
  ind_rhs_rel_.reserve(num_inds_);
  for (const InclusionDependency& ind : deps.inds()) {
    ind_lhs_rel_.push_back(ind.lhs_relation);
    ind_rhs_rel_.push_back(ind.rhs_relation);
  }
  BuildEdges(deps);
  adj_.assign(num_nodes(), {});
  for (const RelianceEdge& e : edges_) adj_[e.from].push_back(e.to);
  for (std::vector<uint32_t>& succ : adj_) {
    std::sort(succ.begin(), succ.end());
    succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
  }
  ComputeIndCriticalPath();
  Condense();
  fingerprint_ = ComputeFingerprint();
}

void SigmaGraph::BuildEdges(const DependencySet& deps) {
  // Bucket consumers by relation once, so edge construction is
  // O(|Σ| · consumers-per-relation) rather than all-pairs.
  std::vector<std::vector<uint32_t>> inds_by_lhs(num_relations_);
  for (uint32_t k = 0; k < num_inds_; ++k) {
    inds_by_lhs[ind_lhs_rel_[k]].push_back(k);
  }
  std::vector<std::vector<uint32_t>> fds_by_rel(num_relations_);
  for (uint32_t i = 0; i < num_fds_; ++i) {
    fds_by_rel[deps.fds()[i].relation].push_back(
        static_cast<uint32_t>(num_inds_) + i);
  }

  for (uint32_t a = 0; a < num_inds_; ++a) {
    const RelationId produced = ind_rhs_rel_[a];
    // IND a -> IND b: a mints facts of b's input relation.
    for (uint32_t b : inds_by_lhs[produced]) {
      edges_.push_back(RelianceEdge{a, b, RelianceKind::kPositive});
    }
    // IND a -> FD f: a minted fact can complete an FD-applicable pair.
    for (uint32_t f : fds_by_rel[produced]) {
      edges_.push_back(RelianceEdge{a, f, RelianceKind::kPositive});
    }
  }
  for (uint32_t i = 0; i < num_fds_; ++i) {
    const uint32_t f = static_cast<uint32_t>(num_inds_) + i;
    const RelationId rel = deps.fds()[i].relation;
    // FD f -> IND b: a merge rewrites facts of `rel` in place, disturbing
    // b's inputs (lhs) or its witness pool (rhs). One edge per IND even
    // when both sides match.
    for (uint32_t b = 0; b < num_inds_; ++b) {
      if (ind_lhs_rel_[b] == rel || ind_rhs_rel_[b] == rel) {
        edges_.push_back(RelianceEdge{f, b, RelianceKind::kInterference});
      }
    }
    // FD f -> FD g on the same relation (including f itself): a merge can
    // make further pairs agree on g's lhs.
    for (uint32_t g : fds_by_rel[rel]) {
      edges_.push_back(RelianceEdge{f, g, RelianceKind::kInterference});
    }
  }
}

bool SigmaGraph::HasEdge(uint32_t from, uint32_t to, RelianceKind kind) const {
  for (const RelianceEdge& e : edges_) {
    if (e.from == from && e.to == to && e.kind == kind) return true;
  }
  return false;
}

void SigmaGraph::ComputeIndCriticalPath() {
  // Kahn longest-path over the IND positive subgraph only — the exact,
  // correctness-bearing part of the graph (see header).
  std::vector<uint32_t> indegree(num_inds_, 0);
  for (const RelianceEdge& e : edges_) {
    if (e.kind == RelianceKind::kPositive && e.to < num_inds_ &&
        e.from < num_inds_) {
      ++indegree[e.to];
    }
  }
  std::vector<uint32_t> depth(num_inds_, 1);  // path length in nodes
  std::vector<uint32_t> queue;
  for (uint32_t k = 0; k < num_inds_; ++k) {
    if (indegree[k] == 0) queue.push_back(k);
  }
  size_t processed = 0;
  uint32_t best = 0;
  while (!queue.empty()) {
    const uint32_t a = queue.back();
    queue.pop_back();
    ++processed;
    best = std::max(best, depth[a]);
    for (uint32_t b : adj_[a]) {
      if (b >= num_inds_) continue;
      depth[b] = std::max(depth[b], depth[a] + 1);
      if (--indegree[b] == 0) queue.push_back(b);
    }
  }
  if (processed < num_inds_) {
    ind_depth_ = std::nullopt;  // an IND cycle survived — chase may diverge
  } else {
    ind_depth_ = best;  // 0 when Σ has no INDs
  }
}

void SigmaGraph::Condense() {
  // Iterative Tarjan over all nodes and all edge kinds. Emits SCCs in
  // reverse topological order; we reverse at the end so components_ is
  // topologically sorted (every cross edge goes low -> high).
  const uint32_t n = static_cast<uint32_t>(num_nodes());
  constexpr uint32_t kUnvisited = ~uint32_t{0};
  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<uint32_t> stack;
  component_of_.assign(n, 0);
  std::vector<std::vector<uint32_t>> sccs;

  struct Frame {
    uint32_t node;
    size_t next_succ;
  };
  uint32_t next_index = 0;
  std::vector<Frame> frames;
  for (uint32_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back(Frame{root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const uint32_t v = frame.node;
      if (frame.next_succ < adj_[v].size()) {
        const uint32_t w = adj_[v][frame.next_succ++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back(Frame{w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
        continue;
      }
      if (lowlink[v] == index[v]) {
        std::vector<uint32_t> members;
        while (true) {
          const uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          members.push_back(w);
          if (w == v) break;
        }
        sccs.push_back(std::move(members));
      }
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().node] =
            std::min(lowlink[frames.back().node], lowlink[v]);
      }
    }
  }

  std::reverse(sccs.begin(), sccs.end());
  components_.resize(sccs.size());
  for (uint32_t c = 0; c < sccs.size(); ++c) {
    std::sort(sccs[c].begin(), sccs[c].end());
    for (uint32_t node : sccs[c]) component_of_[node] = c;
    components_[c].members = std::move(sccs[c]);
  }
  for (const RelianceEdge& e : edges_) {
    const uint32_t cf = component_of_[e.from];
    const uint32_t ct = component_of_[e.to];
    if (cf == ct) {
      // Any intra-component edge (self-loop included) marks it cyclic.
      components_[cf].cyclic = true;
    } else {
      components_[cf].successors.push_back(ct);
    }
  }
  for (Component& c : components_) {
    c.cyclic = c.cyclic || c.members.size() > 1;
    std::sort(c.successors.begin(), c.successors.end());
    c.successors.erase(std::unique(c.successors.begin(), c.successors.end()),
                       c.successors.end());
  }
  // Longest path from sources, in topological order; layering by depth
  // gives the independent frontier sets (all predecessors strictly below).
  uint32_t max_depth = 0;
  for (uint32_t c = 0; c < components_.size(); ++c) {
    for (uint32_t succ : components_[c].successors) {
      components_[succ].depth =
          std::max(components_[succ].depth, components_[c].depth + 1);
    }
    max_depth = std::max(max_depth, components_[c].depth);
  }
  frontiers_.assign(components_.empty() ? 0 : max_depth + 1, {});
  for (uint32_t c = 0; c < components_.size(); ++c) {
    frontiers_[components_[c].depth].push_back(c);
  }
}

std::vector<bool> SigmaGraph::ReachableInds(
    const std::vector<bool>& relations_present) const {
  std::vector<bool> present(num_relations_, false);
  for (size_t r = 0; r < relations_present.size() && r < num_relations_; ++r) {
    present[r] = relations_present[r];
  }
  std::vector<bool> reachable(num_inds_, false);
  // Fixpoint of lhs-present => fires => rhs-present. Each pass either
  // marks a new IND or stops; <= num_inds_ + 1 passes.
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t k = 0; k < num_inds_; ++k) {
      if (reachable[k] || !present[ind_lhs_rel_[k]]) continue;
      reachable[k] = true;
      changed = true;
      present[ind_rhs_rel_[k]] = true;
    }
  }
  return reachable;
}

uint64_t SigmaGraph::ComputeFingerprint() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  h = Mix(h, num_inds_);
  h = Mix(h, num_fds_);
  for (const RelianceEdge& e : edges_) {
    h = Mix(h, (uint64_t{e.from} << 33) | (uint64_t{e.to} << 2) |
                   static_cast<uint64_t>(e.kind));
  }
  h = Mix(h, ind_depth_.has_value() ? uint64_t{*ind_depth_} + 1 : 0);
  return h;
}

std::string SigmaGraph::ToString() const {
  auto node_name = [&](uint32_t node) {
    return node < num_inds_ ? StrCat("ind", node)
                            : StrCat("fd", node - num_inds_);
  };
  std::string out;
  for (const RelianceEdge& e : edges_) {
    if (!out.empty()) out += ' ';
    out += node_name(e.from);
    out += e.kind == RelianceKind::kPositive ? "->" : "~>";
    out += node_name(e.to);
  }
  if (out.empty()) out = "(no edges)";
  return out;
}

}  // namespace cqchase
