// Per-dependency structural fingerprints and Σ-deltas: the identity layer of
// schema evolution. Canonical task keys bake the whole dependency set into
// every verdict (engine/canonical.h), so a one-dependency edit re-keys the
// entire cache hierarchy. Surviving that edit requires talking about *which*
// dependencies changed, and that requires each FD and IND to have an identity
// that is stable across processes, across Σ orderings, and across the edit
// itself — a structural fingerprint, not a positional index.
//
// FingerprintFd / FingerprintInd hash exactly the fields that the chase rules
// read (relation ids, column indices), with the same FNV-1a scheme
// SigmaGraph::Fingerprint() uses, domain-separated by a leading tag byte so an
// FD can never collide with an IND of coincidentally equal fields. Two
// dependencies fingerprint equal iff they are the same dependency up to the
// dedup DependencySet::Add* already performs — insertion order never matters.
//
// ComputeSigmaDelta(old, new) partitions the union of two dependency sets into
// added / removed / unchanged fingerprints. This is the object every layer of
// the lineage subsystem (engine/lineage.h, TierStack::ApplyDelta, the remote
// kTierOpApplyDelta opcode) speaks; it deliberately knows nothing about
// canonical keys or verdicts, so this file depends only on deps/ and can be
// included from the chase and the engine alike without a cycle.
#ifndef CQCHASE_ANALYSIS_DELTA_H_
#define CQCHASE_ANALYSIS_DELTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "deps/dependency_set.h"

namespace cqchase {

// Structural FNV-1a fingerprint of one dependency. Order-sensitive within
// the dependency (column order is semantics for an IND), insensitive to
// everything outside it.
uint64_t FingerprintFd(const FunctionalDependency& fd);
uint64_t FingerprintInd(const InclusionDependency& ind);

// Fingerprints of every dependency in Σ, in SigmaGraph node order: IND k at
// slot k, FD i at slot num_inds + i (analysis/reliance.h) — the indexing the
// chase's used-dependency capture reports bits against.
std::vector<uint64_t> DependencyFingerprints(const DependencySet& deps);

// The sorted, deduplicated fingerprints of the dependencies whose used bit is
// set — the persistable form of the chase's used-dependency capture
// (chase/chase.h). `used_inds`/`used_fds` index deps.inds()/deps.fds()
// positionally; trailing dependencies beyond either bitmap count as unused.
std::vector<uint64_t> UsedDependencyFingerprints(
    const DependencySet& deps, const std::vector<bool>& used_inds,
    const std::vector<bool>& used_fds);

// Order-independent fingerprint of the whole Σ: XOR-accumulated per-dependency
// fingerprints (each mixed once more so self-cancelling pairs require a real
// 64-bit collision), plus the set sizes. Equal Σs (as sets) agree regardless
// of insertion order.
uint64_t SigmaFingerprint(const DependencySet& deps);

// The difference between two dependency sets, as fingerprint vectors (each
// sorted ascending, deduplicated). `unchanged` is the intersection — the
// dependencies a surviving verdict may still rely on.
struct SigmaDelta {
  std::vector<uint64_t> added;
  std::vector<uint64_t> removed;
  std::vector<uint64_t> unchanged;

  bool empty() const { return added.empty() && removed.empty(); }
  // True when `fp` names a removed dependency (binary search).
  bool Removed(uint64_t fp) const;
  std::string ToString() const;
};

SigmaDelta ComputeSigmaDelta(const DependencySet& old_deps,
                             const DependencySet& new_deps);

}  // namespace cqchase

#endif  // CQCHASE_ANALYSIS_DELTA_H_
