// Finite containment (Section 4 of the paper): Σ ⊨ Q ⊆f Q' quantifies over
// finite databases only. ⊆∞ always implies ⊆f; the converse ("finite
// controllability") holds for FD-only sets, width-1 IND sets and key-based
// sets (Theorem 3), but fails in general — the paper's example with
// Σ = { R:2→1, R[2] ⊆ R[1] } is provided by Section4Example() in
// gen/scenarios.h.
//
// Tools here:
//  * ExhaustiveFiniteCounterexample — enumerates every instance over a small
//    constant domain, keeping those that satisfy Σ, and looks for one where
//    Q(D) ⊄ Q'(D). Sound and complete up to the domain/tuple budget.
//  * RandomFiniteCounterexample — randomized sampling with Σ-repair; much
//    larger instances, no completeness.
//  * BuildFiniteWitness — Theorem 3's Q* construction (connected case):
//    chases Q but replaces fresh NDVs by per-column special symbols beyond a
//    cutoff level, "closing off" the possibly-infinite chase into a finite
//    Σ-satisfying database that behaves like the chase up to the cutoff.
//    When Σ ⊭ Q ⊆∞ Q' and the cutoff is deep enough, Q* is a *finite*
//    counterexample — the effective content of Theorem 3.
#ifndef CQCHASE_FINITE_FINITE_CONTAINMENT_H_
#define CQCHASE_FINITE_FINITE_CONTAINMENT_H_

#include <optional>

#include "chase/chase.h"
#include "cq/query.h"
#include "data/instance.h"
#include "deps/dependency_set.h"

namespace cqchase {

struct ExhaustiveSearchParams {
  size_t domain_size = 3;     // number of distinct constants
  size_t max_candidate_tuples = 20;  // refuse blowups beyond 2^this subsets
};

// Searches every database over `domain_size` constants (all subsets of all
// possible tuples) for a Σ-satisfying instance with Q(D) ⊄ Q'(D). Returns
// such an instance, or nullopt if none exists at this scale. Fails with
// kResourceExhausted if the tuple universe exceeds max_candidate_tuples.
Result<std::optional<Instance>> ExhaustiveFiniteCounterexample(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
    const DependencySet& deps, SymbolTable& symbols,
    const ExhaustiveSearchParams& params = {});

struct RandomSearchParams {
  size_t samples = 200;
  size_t domain_size = 6;
  size_t tuples_per_relation = 6;
  size_t repair_budget = 200;
  uint64_t seed = 1;
};

// Randomized finite counterexample search: draws random instances, repairs
// them toward Σ, and tests containment on the survivors.
Result<std::optional<Instance>> RandomFiniteCounterexample(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
    const DependencySet& deps, SymbolTable& symbols,
    const RandomSearchParams& params = {});

// --- Theorem 3: the Q* construction --------------------------------------

struct FiniteWitnessParams {
  // Levels of genuine chase before closing off with special symbols. The
  // theorem uses (d+1)·k_Σ with d = diameter of G_Q'; callers can pass
  // SuggestCutoff() or any larger value.
  uint32_t cutoff_level = 4;
  // Defaults follow the library-wide chase budget (chase/chase.h), the one
  // place resource defaults are stated.
  size_t max_conjuncts = ChaseLimits{}.max_conjuncts;
};

struct FiniteWitness {
  Instance instance;         // Q* viewed as a finite database
  std::vector<Term> summary; // image of Q's summary row in Q*
  uint32_t cutoff_level = 0;
  size_t conjuncts_below_cutoff = 0;
  size_t conjuncts_total = 0;
};

// The symbol-propagation constant k_Σ of the Theorem 3 proof: 1 for
// key-based Σ (Lemma 6); the sum of the arities of IND right-hand-side
// relations for width-1 IND sets. nullopt for other shapes (the theorem
// does not cover them).
std::optional<uint32_t> KSigma(const DependencySet& deps,
                               const Catalog& catalog);

// Diameter of the paper's G_Q' graph: vertices are Q's conjuncts plus the
// summary row, edges join vertices sharing a symbol. For a disconnected
// graph, the maximum component diameter is returned.
uint32_t QueryGraphDiameter(const ConjunctiveQuery& q);

// The cutoff (d+1)·k_Σ from the theorem, or nullopt when k_Σ is undefined.
std::optional<uint32_t> SuggestCutoff(const ConjunctiveQuery& q_prime,
                                      const DependencySet& deps);

// Builds Q*: an R-chase of `q` under `deps` in which every NDV that would be
// created at a level exceeding params.cutoff_level is replaced by the
// special symbol z_{relation.column}. The resulting chase is finite and
// satisfies deps. Requires deps to be IND-only or key-based (the FD phase is
// run first; per Lemma 2 no FD fires afterwards).
Result<FiniteWitness> BuildFiniteWitness(
    const ConjunctiveQuery& q, const DependencySet& deps,
    SymbolTable& symbols, const FiniteWitnessParams& params = {});

// End-to-end Theorem 3 tool: if Σ ⊭ Q ⊆∞ Q' (per the chase decision), looks
// for a finite counterexample database by evaluating both queries on Q*.
// Returns the counterexample, or nullopt if Q* does not separate them at
// this cutoff.
Result<std::optional<Instance>> FiniteCounterexampleFromWitness(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
    const DependencySet& deps, SymbolTable& symbols,
    const FiniteWitnessParams& params = {});

}  // namespace cqchase

#endif  // CQCHASE_FINITE_FINITE_CONTAINMENT_H_
