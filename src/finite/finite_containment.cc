#include "finite/finite_containment.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "base/rng.h"
#include "base/string_util.h"
#include "engine/sigma_class.h"

namespace cqchase {

namespace {

// Constants appearing in a query (conjuncts + summary), in occurrence order.
std::vector<Term> QueryConstants(const ConjunctiveQuery& q) {
  std::vector<Term> out;
  std::unordered_set<Term> seen;
  auto visit = [&](Term t) {
    if (t.is_constant() && seen.insert(t).second) out.push_back(t);
  };
  for (Term t : q.summary()) visit(t);
  for (const Fact& f : q.conjuncts()) {
    for (Term t : f.terms) visit(t);
  }
  return out;
}

// All tuples over `domain` for every relation of the catalog.
std::vector<Fact> AllTuples(const Catalog& catalog,
                            const std::vector<Term>& domain) {
  std::vector<Fact> out;
  for (RelationId r = 0; r < catalog.num_relations(); ++r) {
    const size_t arity = catalog.arity(r);
    std::vector<size_t> idx(arity, 0);
    while (true) {
      Fact f;
      f.relation = r;
      f.terms.reserve(arity);
      for (size_t i = 0; i < arity; ++i) f.terms.push_back(domain[idx[i]]);
      out.push_back(std::move(f));
      size_t i = 0;
      for (; i < arity; ++i) {
        if (++idx[i] < domain.size()) break;
        idx[i] = 0;
      }
      if (i == arity) break;
    }
  }
  return out;
}

}  // namespace

Result<std::optional<Instance>> ExhaustiveFiniteCounterexample(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
    const DependencySet& deps, SymbolTable& symbols,
    const ExhaustiveSearchParams& params) {
  // Domain: the queries' own constants, padded with fresh ones.
  std::vector<Term> domain = QueryConstants(q);
  for (Term t : QueryConstants(q_prime)) {
    if (std::find(domain.begin(), domain.end(), t) == domain.end()) {
      domain.push_back(t);
    }
  }
  while (domain.size() < params.domain_size) {
    domain.push_back(symbols.MakeFreshConstant("d"));
  }

  std::vector<Fact> universe = AllTuples(q.catalog(), domain);
  if (universe.size() > params.max_candidate_tuples) {
    return Status::ResourceExhausted(
        StrCat("exhaustive search universe has ", universe.size(),
               " tuples (cap ", params.max_candidate_tuples, ")"));
  }
  const uint64_t subsets = 1ull << universe.size();
  for (uint64_t mask = 1; mask < subsets; ++mask) {
    Instance instance(&q.catalog());
    for (size_t i = 0; i < universe.size(); ++i) {
      if (mask & (1ull << i)) {
        CQCHASE_RETURN_IF_ERROR(instance.AddFact(universe[i]));
      }
    }
    if (!instance.Satisfies(deps)) continue;
    if (!instance.EvalContained(q, q_prime)) {
      return std::optional<Instance>(std::move(instance));
    }
  }
  return std::optional<Instance>(std::nullopt);
}

Result<std::optional<Instance>> RandomFiniteCounterexample(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
    const DependencySet& deps, SymbolTable& symbols,
    const RandomSearchParams& params) {
  Rng rng(params.seed);
  std::vector<Term> domain = QueryConstants(q);
  for (Term t : QueryConstants(q_prime)) {
    if (std::find(domain.begin(), domain.end(), t) == domain.end()) {
      domain.push_back(t);
    }
  }
  while (domain.size() < params.domain_size) {
    domain.push_back(symbols.MakeFreshConstant("d"));
  }
  const Catalog& catalog = q.catalog();
  for (size_t s = 0; s < params.samples; ++s) {
    Instance instance(&catalog);
    for (RelationId r = 0; r < catalog.num_relations(); ++r) {
      for (size_t k = 0; k < params.tuples_per_relation; ++k) {
        std::vector<Term> row(catalog.arity(r));
        for (Term& t : row) t = rng.Pick(domain);
        CQCHASE_RETURN_IF_ERROR(instance.AddTuple(r, std::move(row)));
      }
    }
    Status repaired =
        RepairToSatisfy(deps, symbols, params.repair_budget, instance);
    if (!repaired.ok()) continue;  // diverged: skip this sample
    if (!instance.Satisfies(deps)) continue;
    if (!instance.EvalContained(q, q_prime)) {
      return std::optional<Instance>(std::move(instance));
    }
  }
  return std::optional<Instance>(std::nullopt);
}

std::optional<uint32_t> KSigma(const DependencySet& deps,
                               const Catalog& catalog) {
  // The constant is computed by the shared Σ analyzer (engine/sigma_class.h)
  // so the engine's dispatcher and the Theorem 3 tools agree on coverage.
  return AnalyzeSigma(deps, catalog).k_sigma;
}

uint32_t QueryGraphDiameter(const ConjunctiveQuery& q) {
  // Vertices: conjuncts plus the summary row.
  const size_t n = q.conjuncts().size() + 1;
  auto terms_of = [&](size_t v) -> std::vector<Term> {
    if (v < q.conjuncts().size()) return q.conjuncts()[v].terms;
    return q.summary();
  };
  std::vector<std::vector<size_t>> adj(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<Term> ti = terms_of(i);
    for (size_t j = i + 1; j < n; ++j) {
      std::vector<Term> tj = terms_of(j);
      bool share = false;
      for (Term a : ti) {
        if (std::find(tj.begin(), tj.end(), a) != tj.end()) {
          share = true;
          break;
        }
      }
      if (share) {
        adj[i].push_back(j);
        adj[j].push_back(i);
      }
    }
  }
  uint32_t diameter = 0;
  for (size_t start = 0; start < n; ++start) {
    std::vector<int64_t> dist(n, -1);
    std::deque<size_t> queue{start};
    dist[start] = 0;
    while (!queue.empty()) {
      size_t v = queue.front();
      queue.pop_front();
      for (size_t w : adj[v]) {
        if (dist[w] < 0) {
          dist[w] = dist[v] + 1;
          diameter = std::max<uint32_t>(diameter,
                                        static_cast<uint32_t>(dist[w]));
          queue.push_back(w);
        }
      }
    }
  }
  return diameter;
}

std::optional<uint32_t> SuggestCutoff(const ConjunctiveQuery& q_prime,
                                      const DependencySet& deps) {
  std::optional<uint32_t> k = KSigma(deps, q_prime.catalog());
  if (!k.has_value()) return std::nullopt;
  return (QueryGraphDiameter(q_prime) + 1) * *k;
}

Result<FiniteWitness> BuildFiniteWitness(const ConjunctiveQuery& q,
                                         const DependencySet& deps,
                                         SymbolTable& symbols,
                                         const FiniteWitnessParams& params) {
  const Catalog& catalog = q.catalog();
  if (!deps.ContainsOnlyInds() && !deps.IsKeyBased(catalog)) {
    return Status::FailedPrecondition(
        "BuildFiniteWitness requires an IND-only or key-based set "
        "(Theorem 3 coverage)");
  }

  // FD phase first (Lemma 2: afterwards no FD ever fires in the R-chase).
  DependencySet fds = deps.FdsOnly();
  CQCHASE_ASSIGN_OR_RETURN(
      Chase fd_chase,
      BuildChase(q, fds, symbols, ChaseVariant::kRequired, ChaseLimits{}));
  if (fd_chase.is_empty_query()) {
    // Q is unsatisfiable under Σ: the empty database is a (degenerate)
    // Σ-satisfying witness on which Q returns nothing.
    FiniteWitness w{Instance(&catalog), fd_chase.summary(),
                    params.cutoff_level, 0, 0};
    return w;
  }

  // Special symbol per (relation, column): the z_A of the Theorem 3 proof.
  std::vector<std::vector<Term>> special(catalog.num_relations());
  for (RelationId r = 0; r < catalog.num_relations(); ++r) {
    special[r].resize(catalog.arity(r));
    for (uint32_t c = 0; c < catalog.arity(r); ++c) {
      special[r][c] = symbols.InternNondistVar(
          StrCat("z!", catalog.relation(r).name(), ".",
                 catalog.relation(r).attribute(c)));
    }
  }

  // Modified R-chase over plain facts.
  struct Entry {
    Fact fact;
    uint32_t level;
  };
  std::vector<Entry> entries;
  std::unordered_set<Fact> present;
  std::deque<size_t> worklist;
  for (const Fact& f : fd_chase.AliveFacts()) {
    if (present.insert(f).second) {
      entries.push_back(Entry{f, 0});
      worklist.push_back(entries.size() - 1);
    }
  }

  size_t below_cutoff = entries.size();
  while (!worklist.empty()) {
    const size_t ei = worklist.front();
    worklist.pop_front();
    for (uint32_t k = 0; k < deps.inds().size(); ++k) {
      const InclusionDependency& ind = deps.inds()[k];
      const Fact source = entries[ei].fact;  // copy: entries may grow
      const uint32_t source_level = entries[ei].level;
      if (ind.lhs_relation != source.relation) continue;
      std::vector<Term> x_values;
      for (uint32_t c : ind.lhs_columns) x_values.push_back(source.terms[c]);
      // Required? (R-chase discipline)
      bool witness_exists = false;
      for (const Entry& e : entries) {
        if (e.fact.relation != ind.rhs_relation) continue;
        bool match = true;
        for (size_t j = 0; j < ind.rhs_columns.size(); ++j) {
          if (e.fact.terms[ind.rhs_columns[j]] != x_values[j]) {
            match = false;
            break;
          }
        }
        if (match) {
          witness_exists = true;
          break;
        }
      }
      if (witness_exists) continue;
      const uint32_t new_level = source_level + 1;
      Fact created;
      created.relation = ind.rhs_relation;
      created.terms.resize(catalog.arity(ind.rhs_relation));
      for (size_t j = 0; j < ind.rhs_columns.size(); ++j) {
        created.terms[ind.rhs_columns[j]] = x_values[j];
      }
      for (uint32_t col = 0; col < created.terms.size(); ++col) {
        if (created.terms[col].is_valid()) continue;
        created.terms[col] =
            new_level > params.cutoff_level
                ? special[ind.rhs_relation][col]
                : symbols.MakeChaseNdv(
                      NdvProvenance{col, ei, k, new_level});
      }
      if (!present.insert(created).second) continue;
      entries.push_back(Entry{std::move(created), new_level});
      if (new_level <= params.cutoff_level) ++below_cutoff;
      worklist.push_back(entries.size() - 1);
      if (entries.size() > params.max_conjuncts) {
        return Status::ResourceExhausted(
            StrCat("finite witness exceeded max_conjuncts=",
                   params.max_conjuncts));
      }
    }
  }

  Instance instance(&catalog);
  for (const Entry& e : entries) {
    CQCHASE_RETURN_IF_ERROR(instance.AddFact(e.fact));
  }
  FiniteWitness w{std::move(instance), fd_chase.summary(),
                  params.cutoff_level, below_cutoff, entries.size()};
  return w;
}

Result<std::optional<Instance>> FiniteCounterexampleFromWitness(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
    const DependencySet& deps, SymbolTable& symbols,
    const FiniteWitnessParams& params) {
  CQCHASE_ASSIGN_OR_RETURN(FiniteWitness witness,
                           BuildFiniteWitness(q, deps, symbols, params));
  if (!witness.instance.Satisfies(deps)) {
    return Status::Internal(
        "finite witness does not satisfy the dependencies (cutoff too "
        "small for this Σ shape?)");
  }
  if (!witness.instance.EvalContained(q, q_prime)) {
    return std::optional<Instance>(std::move(witness.instance));
  }
  return std::optional<Instance>(std::nullopt);
}

}  // namespace cqchase
