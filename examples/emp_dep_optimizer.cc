// A miniature dependency-aware query optimizer session over the paper's
// EMP/DEP schema: loads a small database, runs three increasingly redundant
// queries through the optimizer, and shows that the rewritten queries return
// identical answers while doing measurably less join work.
//
//   $ ./build/examples/emp_dep_optimizer
#include <cstdio>

#include "core/containment.h"
#include "cq/cq_parser.h"
#include "data/instance.h"
#include "deps/deps_parser.h"
#include "gen/scenarios.h"
#include "opt/optimizer.h"

using namespace cqchase;

namespace {

// Builds a plausible EMP/DEP database that satisfies the IND.
Instance BuildDatabase(const Catalog& catalog, SymbolTable& symbols) {
  Instance db(&catalog);
  RelationId emp = *catalog.FindRelation("EMP");
  RelationId dep = *catalog.FindRelation("DEP");
  auto c = [&](const char* name) { return symbols.InternConstant(name); };
  struct EmpRow {
    const char *eno, *sal, *dept;
  };
  for (const EmpRow& r : {EmpRow{"e1", "50", "sales"}, EmpRow{"e2", "60", "sales"},
                          EmpRow{"e3", "70", "eng"}, EmpRow{"e4", "55", "eng"},
                          EmpRow{"e5", "65", "ops"}}) {
    (void)db.AddTuple(emp, {c(r.eno), c(r.sal), c(r.dept)});
  }
  struct DepRow {
    const char *dept, *loc;
  };
  for (const DepRow& r : {DepRow{"sales", "nyc"}, DepRow{"eng", "sf"},
                          DepRow{"ops", "chi"}, DepRow{"hr", "nyc"}}) {
    (void)db.AddTuple(dep, {c(r.dept), c(r.loc)});
  }
  return db;
}

void PrintRows(const std::vector<std::vector<Term>>& rows,
               const SymbolTable& symbols) {
  for (const auto& row : rows) {
    std::printf("  %s\n", TermsToString(row, symbols).c_str());
  }
}

}  // namespace

int main() {
  Scenario s = EmpDepScenario();
  Instance db = BuildDatabase(*s.catalog, *s.symbols);
  TableStats stats = TableStats::FromInstance(db);

  const char* queries[] = {
      // The intro's Q1: the DEP join is redundant under the IND.
      "ans(e) :- EMP(e, s, d), DEP(d, l)",
      // Doubly redundant: a renamed duplicate EMP conjunct on top.
      "ans(e) :- EMP(e, s, d), EMP(e, s2, d2), DEP(d, l)",
      // Selective constant: reordering should drive the plan from DEP('eng').
      "ans(e, l) :- EMP(e, s, d), DEP(d, l), DEP(d2, 'nyc')",
  };

  for (const char* text : queries) {
    Result<ConjunctiveQuery> q = ParseQuery(*s.catalog, *s.symbols, text);
    if (!q.ok()) {
      std::printf("parse error: %s\n", q.status().ToString().c_str());
      continue;
    }
    std::printf("=====\ninput : %s\n", q->ToString().c_str());

    OptimizerOptions options;
    options.stats = stats;
    Result<OptimizeReport> opt =
        OptimizeQuery(*q, s.deps, *s.symbols, options);
    if (!opt.ok()) {
      std::printf("optimizer error: %s\n", opt.status().ToString().c_str());
      continue;
    }
    std::printf("output: %s\n", opt->query.ToString().c_str());
    for (const std::string& line : opt->trace) std::printf("  %s\n", line.c_str());

    // The rewrite is only correct on databases satisfying Σ — check ours
    // does, then compare answers.
    if (!db.Satisfies(s.deps)) {
      std::printf("database violates Sigma?!\n");
      return 1;
    }
    auto before = db.Eval(*q);
    auto after = db.Eval(opt->query);
    std::printf("answers identical: %s (%zu row(s))\n",
                before == after ? "yes" : "NO", after.size());
    PrintRows(after, *s.symbols);
    std::printf("estimated cost: %.1f -> %.1f\n",
                EstimatePlanCost(stats, *q),
                EstimatePlanCost(stats, opt->query));
  }
  return 0;
}
