// Section 4's cautionary tale, end to end: two queries that every finite
// Σ-database considers equivalent, yet the chase — an infinite Σ-database —
// separates. Prints the chase prefix that acts as the infinite
// counterexample and exhaustively verifies there is no finite one at small
// scales.
//
//   $ ./build/examples/finite_vs_infinite
#include <cstdio>

#include "chase/chase.h"
#include "engine/engine.h"
#include "gen/scenarios.h"

using namespace cqchase;

int main() {
  Scenario s = Section4Scenario();
  std::printf("Sigma:\n%s\n", s.deps.ToString(*s.catalog).c_str());
  std::printf("Q1: %s\nQ2: %s\n\n", s.queries[0].ToString().c_str(),
              s.queries[1].ToString().c_str());

  // The chase of Q1: R(x,y), then R[2] <= R[1] demands a row starting with
  // y, the FD R:2->1 never merges anything here, and the process runs
  // forever: x <- y <- n1 <- n2 <- ... an infinite backward chain.
  {
    ChaseLimits limits;
    limits.max_level = 6;
    Chase chase(s.catalog.get(), s.symbols.get(), &s.deps,
                ChaseVariant::kRequired, limits);
    if (!chase.Init(s.queries[0]).ok()) return 1;
    (void)chase.ExpandToLevel(6);
    std::printf("chase_Sigma(Q1), levels 0..6 (%s):\n%s\n",
                chase.outcome() == ChaseOutcome::kSaturated ? "saturated"
                                                            : "infinite",
                chase.ToString().c_str());
    std::printf(
        "Q2 needs some R(y', x): a row *ending* in Q1's x. No prefix of the\n"
        "chase ever creates one, so Q2 does not map into chase(Q1):\n\n");
  }

  EngineConfig config;
  config.containment.allow_semidecision = true;  // Sigma mixes an FD, an IND
  config.containment.limits.max_level = 40;
  config.containment.limits.max_conjuncts = 100000;
  ContainmentEngine engine(s.catalog.get(), s.symbols.get(), config);
  Result<EngineVerdict> fwd =
      engine.Check(s.queries[0], s.queries[1], s.deps);
  if (fwd.ok()) {
    std::printf("Sigma |= Q1 <=inf Q2 ?  %s\n",
                fwd->report.contained ? "yes" : "no");
  } else {
    std::printf("Sigma |= Q1 <=inf Q2 ?  no witness within 40 chase levels "
                "(Section 4 proves none exists)\n");
  }

  // Finite side: every Σ-database over up to 3 constants — exhaustively.
  std::printf("\nexhaustive finite check (is there a finite Sigma-database "
              "where Q1(D) !<= Q2(D)?):\n");
  for (size_t domain = 1; domain <= 3; ++domain) {
    ExhaustiveSearchParams params;
    params.domain_size = domain;
    params.max_candidate_tuples = 16;
    Result<std::optional<Instance>> cex = engine.ExhaustiveCounterexample(
        s.queries[0], s.queries[1], s.deps, params);
    if (!cex.ok()) {
      std::printf("  domain %zu: %s\n", domain,
                  cex.status().ToString().c_str());
      continue;
    }
    std::printf("  domain %zu: %s\n", domain,
                cex->has_value() ? "counterexample found (unexpected!)"
                                 : "none — Q1(D) <= Q2(D) on all of them");
  }

  // Why finiteness matters: in a finite Σ-database the chain x <- y <- ...
  // must close into a cycle, the FD R:2->1 then squeezes the cycle, and
  // every R-row's first column also appears somewhere as a second column —
  // which is exactly what Q2 asks for.
  std::printf(
      "\nSigma |= Q1 <=f Q2 holds, Sigma |= Q1 <=inf Q2 fails: containment\n"
      "under this Sigma (an FD plus an IND) is not finitely controllable.\n"
      "Theorem 3 proves this cannot happen for width-1-IND-only or key-based "
      "Sigma.\n");
  return 0;
}
