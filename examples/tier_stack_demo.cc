// The composable verdict-tier hierarchy: two engines in one process share a
// verdict authority over the loopback RemoteTier.
//
//   $ ./build/tier_stack_demo
//
// Engine A stacks LRU → remote(loopback) and decides two containment
// questions by chasing; its verdicts are published write-behind to the
// authority. Engine B — the "other node": cold LRU, same authority —
// answers the identical questions without building a single chase: every
// verdict arrives over the wire protocol. Swap InProcessTransport for a TCP
// transport and the same code shares verdicts across machines; stack a
// TierSpec::LocalStore between the two and each node also survives its own
// restarts (see persistent_store_demo).
#include <cstdio>
#include <memory>

#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "engine/engine.h"
#include "engine/remote_tier.h"
#include "schema/catalog.h"
#include "symbols/symbol_table.h"

using namespace cqchase;

namespace {

EngineConfig LoopbackConfig(
    const std::shared_ptr<VerdictAuthority>& authority) {
  EngineConfig config;
  config.tiers = {
      TierSpec::Lru(1 << 10),
      TierSpec::Remote(std::make_shared<InProcessTransport>(authority))};
  return config;
}

void RunQuestions(const char* label, ContainmentEngine& engine,
                  const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                  const DependencySet& deps) {
  for (auto [name, from, to] : {std::tuple{"Q1 <= Q2", &q1, &q2},
                                std::tuple{"Q2 <= Q1", &q2, &q1}}) {
    Result<EngineVerdict> v = engine.Check(*from, *to, deps);
    if (!v.ok()) {
      std::printf("  %s: error %s\n", name, v.status().ToString().c_str());
      continue;
    }
    std::printf("  %s: %-13s  (%s)\n", name,
                v->report.contained ? "contained" : "not contained",
                v->remote_hit   ? "served over the remote tier"
                : v->cache_hit  ? "served from the in-memory tier"
                                : "decided by chasing");
  }
  const EngineStats stats = engine.stats();
  std::printf("  %s: %llu chases built, %llu remote hits, %llu remote "
              "publishes\n\n",
              label, static_cast<unsigned long long>(stats.chases_built),
              static_cast<unsigned long long>(stats.remote_hits),
              static_cast<unsigned long long>(stats.remote_writes));
}

}  // namespace

int main() {
  Catalog catalog;
  if (!catalog.AddRelation("EMP", {"eno", "sal", "dept"}).ok() ||
      !catalog.AddRelation("DEP", {"dept", "loc"}).ok()) {
    std::printf("schema error\n");
    return 1;
  }
  Result<DependencySet> deps =
      ParseDependencies(catalog, "EMP[dept] <= DEP[dept]");
  SymbolTable symbols;
  Result<ConjunctiveQuery> q1 =
      ParseQuery(catalog, symbols, "ans(e) :- EMP(e, s, d), DEP(d, l)");
  Result<ConjunctiveQuery> q2 =
      ParseQuery(catalog, symbols, "ans(e) :- EMP(e, s, d)");
  if (!deps.ok() || !q1.ok() || !q2.ok()) {
    std::printf("parse error\n");
    return 1;
  }

  // One authority, shared by every engine that connects a transport to it.
  auto authority = std::make_shared<VerdictAuthority>();

  std::printf("engine A (decides and publishes):\n");
  {
    ContainmentEngine a(&catalog, &symbols, LoopbackConfig(authority));
    RunQuestions("engine A", a, *q1, *q2, *deps);
    // Scope exit drains the write-behind publish to the authority.
  }
  std::printf("authority now holds %zu verdicts\n\n", authority->size());

  std::printf("engine B (cold caches, same authority):\n");
  ContainmentEngine b(&catalog, &symbols, LoopbackConfig(authority));
  RunQuestions("engine B", b, *q1, *q2, *deps);

  if (b.stats().chases_built == 0 && b.stats().remote_hits > 0) {
    std::printf("engine B never chased: the loopback remote tier answered "
                "everything.\n");
  }
  return 0;
}
