// Quickstart: declare a schema, parse dependencies and queries from text,
// test containment and equivalence under Σ through the ContainmentEngine,
// and inspect the chase.
//
//   $ ./build/examples/quickstart
//
// This walks exactly the paper's introduction example: with the inclusion
// dependency EMP[dept] ⊆ DEP[dept], the query that joins EMP with DEP is
// equivalent to the one that scans EMP alone.
#include <cstdio>

#include "chase/chase.h"
#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "engine/engine.h"
#include "schema/catalog.h"
#include "symbols/symbol_table.h"

using namespace cqchase;

int main() {
  // 1. Schema: two relations. The Catalog is the paper's "database scheme".
  Catalog catalog;
  Result<RelationId> emp = catalog.AddRelation("EMP", {"eno", "sal", "dept"});
  Result<RelationId> dep = catalog.AddRelation("DEP", {"dept", "loc"});
  if (!emp.ok() || !dep.ok()) {
    std::printf("schema error\n");
    return 1;
  }

  // 2. Dependencies: one inclusion dependency, parsed from text. Attribute
  //    references may use names or 1-based positions ("EMP[3] <= DEP[1]").
  Result<DependencySet> deps =
      ParseDependencies(catalog, "EMP[dept] <= DEP[dept]");
  if (!deps.ok()) {
    std::printf("dependency parse error: %s\n",
                deps.status().ToString().c_str());
    return 1;
  }

  // 3. Queries. Both must share one SymbolTable so their variables and
  //    constants live in one universe.
  SymbolTable symbols;
  Result<ConjunctiveQuery> q1 =
      ParseQuery(catalog, symbols, "ans(e) :- EMP(e, s, d), DEP(d, l)");
  Result<ConjunctiveQuery> q2 =
      ParseQuery(catalog, symbols, "ans(e) :- EMP(e, s, d)");
  if (!q1.ok() || !q2.ok()) {
    std::printf("query parse error\n");
    return 1;
  }
  std::printf("Q1: %s\nQ2: %s\nSigma: %s\n\n", q1->ToString().c_str(),
              q2->ToString().c_str(), deps->ToString(catalog).c_str());

  // 4. The engine: one object answers every containment question, choosing
  //    a strategy per the Σ classification and memoizing verdicts.
  ContainmentEngine engine(&catalog, &symbols);

  // Containment both ways, with and without Σ.
  DependencySet empty;
  for (auto [name, from, to] :
       {std::tuple{"Q1 <= Q2", &*q1, &*q2}, std::tuple{"Q2 <= Q1", &*q2, &*q1}}) {
    Result<EngineVerdict> with_sigma = engine.Check(*from, *to, *deps);
    Result<EngineVerdict> without = engine.Check(*from, *to, empty);
    if (!with_sigma.ok() || !without.ok()) {
      std::printf("containment error\n");
      return 1;
    }
    std::printf("%s:  under Sigma: %-3s (%s)   without: %-3s (%s)\n", name,
                with_sigma->report.contained ? "yes" : "no",
                std::string(ToString(with_sigma->strategy)).c_str(),
                without->report.contained ? "yes" : "no",
                std::string(ToString(without->strategy)).c_str());
  }

  // 5. Equivalence under Σ (Q1 ≡ Q2 — the paper's optimization opportunity).
  //    The forward direction was just checked, so the engine's verdict cache
  //    answers it without re-chasing.
  Result<bool> equiv = engine.CheckEquivalence(*q1, *q2, *deps);
  std::printf("\nQ1 == Q2 under Sigma: %s\n",
              equiv.ok() && *equiv ? "yes" : "no");

  // 6. The async API: submit a request — it owns copies of its inputs, so
  //    nothing dangles — and collect the future when convenient. Requests
  //    run on the engine's persistent work-stealing pool and can carry a
  //    deadline; this one gets 100ms, far more than it needs.
  RequestOptions options;
  options.timeout = std::chrono::milliseconds(100);
  EngineFuture<EngineOutcome> future =
      engine.Submit(ContainmentRequest::Own(*q1, *q2, *deps, options));
  Result<EngineOutcome> outcome = future.Get();
  std::printf("async Q1 <= Q2: %s (cache hit: %s)\n",
              outcome.ok() && outcome->verdict.report.contained ? "yes" : "no",
              outcome.ok() && outcome->verdict.cache_hit ? "yes" : "no");

  EngineStats stats = engine.stats();
  std::printf("engine: %llu checks, %llu cache hits, %llu chases built, "
              "%llu submits\n",
              static_cast<unsigned long long>(stats.checks),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.chases_built),
              static_cast<unsigned long long>(stats.submits));

  // 7. Look at the chase that proves it: chasing Q2 with the IND adds the
  //    DEP conjunct Q1 needs, so Q1 maps into chase(Q2).
  Chase chase(&catalog, &symbols, &*deps, ChaseVariant::kRequired, {});
  if (chase.Init(*q2).ok() && chase.Run().ok()) {
    std::printf("\nchase_Sigma(Q2) = %s\n", chase.AsQuery().ToString().c_str());
  }
  return 0;
}
