// Interactive chase explorer: a tiny REPL for defining a schema,
// dependencies and queries, expanding O-/R-chases level by level, and
// testing containment. Reads commands from stdin, so it works both
// interactively and scripted:
//
//   $ ./build/examples/chase_explorer <<'EOF'
//   relation R a b c
//   relation S x y z
//   dep R[1,3] <= S[1,2]
//   dep S[1,3] <= R[1,2]
//   query q1 ans(c) :- R(a, b, c)
//   chase q1 R 4
//   query q2 ans(c) :- R(a, b, c), S(a, n, m)
//   contains q1 q2
//   EOF
//
// Commands:
//   relation NAME ATTR...         declare a relation
//   dep TEXT                      add an FD ("R: a -> b") or IND ("R[..] <= S[..]")
//   query NAME TEXT               define a named query
//   chase NAME O|R LEVEL          print the chase of a query to LEVEL
//   dot NAME O|R LEVEL            print the chase graph in Graphviz DOT
//   contains NAME NAME            test Sigma |= first <=inf second
//   minimize NAME                 minimize a query under Sigma
//   show                          print schema, Sigma and queries
//   help / quit
#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "chase/chase.h"
#include "chase/chase_graph.h"
#include "core/containment.h"
#include "core/minimize.h"
#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "schema/catalog.h"
#include "symbols/symbol_table.h"

using namespace cqchase;

namespace {

struct Session {
  Catalog catalog;
  SymbolTable symbols;
  DependencySet deps;
  std::map<std::string, ConjunctiveQuery> queries;
};

void Help() {
  std::printf(
      "commands: relation NAME ATTR... | dep TEXT | query NAME TEXT |\n"
      "          chase NAME O|R LEVEL | dot NAME O|R LEVEL |\n"
      "          contains NAME NAME | minimize NAME | show | help | quit\n");
}

bool RunChase(Session& session, const std::string& name,
              const std::string& variant_str, uint32_t level, bool dot) {
  auto it = session.queries.find(name);
  if (it == session.queries.end()) {
    std::printf("unknown query '%s'\n", name.c_str());
    return true;
  }
  ChaseVariant variant = (variant_str == "O" || variant_str == "o")
                             ? ChaseVariant::kOblivious
                             : ChaseVariant::kRequired;
  ChaseLimits limits;
  limits.max_level = level;
  limits.max_conjuncts = 100000;
  Chase chase(&session.catalog, &session.symbols, &session.deps, variant,
              limits);
  Status init = chase.Init(it->second);
  if (!init.ok()) {
    std::printf("chase error: %s\n", init.ToString().c_str());
    return true;
  }
  Result<ChaseOutcome> outcome = chase.ExpandToLevel(level);
  if (!outcome.ok()) {
    std::printf("chase stopped: %s\n", outcome.status().ToString().c_str());
    return true;
  }
  if (dot) {
    std::printf("%s", ChaseGraphToDot(chase).c_str());
  } else {
    std::printf("%s", ChaseGraphToText(chase).c_str());
    std::printf("outcome: %s; conjuncts: %zu\n",
                *outcome == ChaseOutcome::kSaturated ? "saturated (finite)"
                : *outcome == ChaseOutcome::kEmptyQuery
                    ? "empty query (constant clash)"
                    : "truncated (continues below)",
                chase.AliveFacts().size());
  }
  return true;
}

bool HandleLine(Session& session, const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd.empty() || cmd[0] == '#') return true;
  if (cmd == "quit" || cmd == "exit") return false;
  if (cmd == "help") {
    Help();
  } else if (cmd == "relation") {
    std::string name, attr;
    std::vector<std::string> attrs;
    in >> name;
    while (in >> attr) attrs.push_back(attr);
    Result<RelationId> id = session.catalog.AddRelation(name, attrs);
    std::printf("%s\n", id.ok() ? "ok" : id.status().ToString().c_str());
  } else if (cmd == "dep") {
    std::string rest;
    std::getline(in, rest);
    Result<DependencySet> parsed = ParseDependencies(session.catalog, rest);
    if (!parsed.ok()) {
      std::printf("parse error: %s\n", parsed.status().ToString().c_str());
      return true;
    }
    for (const FunctionalDependency& fd : parsed->fds()) {
      (void)session.deps.AddFd(session.catalog, fd);
    }
    for (const InclusionDependency& ind : parsed->inds()) {
      (void)session.deps.AddInd(session.catalog, ind);
    }
    std::printf("ok\n");
  } else if (cmd == "query") {
    std::string name, rest;
    in >> name;
    std::getline(in, rest);
    Result<ConjunctiveQuery> q =
        ParseQuery(session.catalog, session.symbols, rest);
    if (!q.ok()) {
      std::printf("parse error: %s\n", q.status().ToString().c_str());
      return true;
    }
    session.queries.insert_or_assign(name, *q);
    std::printf("%s = %s\n", name.c_str(), q->ToString().c_str());
  } else if (cmd == "chase" || cmd == "dot") {
    std::string name, variant;
    uint32_t level = 3;
    in >> name >> variant >> level;
    return RunChase(session, name, variant, level, cmd == "dot");
  } else if (cmd == "contains") {
    std::string a, b;
    in >> a >> b;
    auto ita = session.queries.find(a);
    auto itb = session.queries.find(b);
    if (ita == session.queries.end() || itb == session.queries.end()) {
      std::printf("unknown query\n");
      return true;
    }
    ContainmentOptions options;
    options.allow_semidecision = true;
    Result<ContainmentReport> r = CheckContainment(
        ita->second, itb->second, session.deps, session.symbols, options);
    if (!r.ok()) {
      std::printf("undecided: %s\n", r.status().ToString().c_str());
      return true;
    }
    std::printf("Sigma |= %s <=inf %s : %s", a.c_str(), b.c_str(),
                r->contained ? "yes" : "no");
    if (r->contained) {
      std::printf(" (witness within level %u; Lemma 5 bound %llu)",
                  r->witness_max_level,
                  static_cast<unsigned long long>(r->level_bound));
    }
    std::printf("\n");
  } else if (cmd == "minimize") {
    std::string name;
    in >> name;
    auto it = session.queries.find(name);
    if (it == session.queries.end()) {
      std::printf("unknown query\n");
      return true;
    }
    ContainmentOptions options;
    options.allow_semidecision = true;
    Result<MinimizeReport> r =
        MinimizeQuery(it->second, session.deps, session.symbols, options);
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
      return true;
    }
    std::printf("%s (removed %zu conjunct(s))\n", r->query.ToString().c_str(),
                r->removed_conjuncts);
  } else if (cmd == "show") {
    std::printf("relations:\n");
    for (RelationId r = 0; r < session.catalog.num_relations(); ++r) {
      const RelationSchema& schema = session.catalog.relation(r);
      std::printf("  %s(", schema.name().c_str());
      for (size_t i = 0; i < schema.arity(); ++i) {
        std::printf("%s%s", i ? ", " : "", schema.attribute(i).c_str());
      }
      std::printf(")\n");
    }
    std::printf("Sigma:\n%s", session.deps.ToString(session.catalog).c_str());
    std::printf("queries:\n");
    for (const auto& [name, q] : session.queries) {
      std::printf("  %s = %s\n", name.c_str(), q.ToString().c_str());
    }
  } else {
    std::printf("unknown command '%s' (try: help)\n", cmd.c_str());
  }
  return true;
}

}  // namespace

int main() {
  std::printf("cqchase explorer — 'help' lists commands, 'quit' exits\n");
  Session session;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!HandleLine(session, line)) break;
  }
  return 0;
}
