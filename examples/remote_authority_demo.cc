// The networked verdict authority: a daemon-in-process serving real TCP on
// 127.0.0.1, and two client engines whose only connection to each other is
// that socket.
//
//   $ ./build/remote_authority_demo
//
// A VerdictAuthorityServer listens on an ephemeral 127.0.0.1 port. Engine A
// stacks LRU → remote(tcp) and decides two containment questions by
// chasing; its verdicts ship to the authority over the wire (write-behind
// publish). Engine B — same stack, cold caches, its *own* TCP connection —
// answers the identical questions without building a single chase. This is
// tier_stack_demo with the loopback replaced by the production transport;
// point the same TcpTransport at another machine's verdict_authorityd and
// nothing else changes. For fleet-scale sharding across several
// authorities, wrap N TcpTransports in a net::ShardedTransport (README
// "Networked verdict authority").
#include <cstdio>
#include <memory>

#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "engine/engine.h"
#include "engine/remote_tier.h"
#include "net/authority_server.h"
#include "net/tcp_transport.h"
#include "schema/catalog.h"
#include "symbols/symbol_table.h"

using namespace cqchase;

namespace {

EngineConfig TcpConfig(uint16_t port) {
  EngineConfig config;
  config.tiers = {TierSpec::Lru(1 << 10),
                  TierSpec::Remote(std::make_shared<net::TcpTransport>(
                      "127.0.0.1", port))};
  return config;
}

void RunQuestions(const char* label, ContainmentEngine& engine,
                  const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                  const DependencySet& deps) {
  for (auto [name, from, to] : {std::tuple{"Q1 <= Q2", &q1, &q2},
                                std::tuple{"Q2 <= Q1", &q2, &q1}}) {
    Result<EngineVerdict> v = engine.Check(*from, *to, deps);
    if (!v.ok()) {
      std::printf("  %s: error %s\n", name, v.status().ToString().c_str());
      continue;
    }
    std::printf("  %s: %-13s  (%s)\n", name,
                v->report.contained ? "contained" : "not contained",
                v->remote_hit   ? "served over TCP from the authority"
                : v->cache_hit  ? "served from the in-memory tier"
                                : "decided by chasing");
  }
  const EngineStats stats = engine.stats();
  std::printf("  %s: %llu chases built, %llu remote hits\n\n", label,
              static_cast<unsigned long long>(stats.chases_built),
              static_cast<unsigned long long>(stats.remote_hits));
}

}  // namespace

int main() {
  Catalog catalog;
  if (!catalog.AddRelation("EMP", {"eno", "sal", "dept"}).ok() ||
      !catalog.AddRelation("DEP", {"dept", "loc"}).ok()) {
    std::printf("schema error\n");
    return 1;
  }
  Result<DependencySet> deps =
      ParseDependencies(catalog, "EMP[dept] <= DEP[dept]");
  SymbolTable symbols;
  Result<ConjunctiveQuery> q1 =
      ParseQuery(catalog, symbols, "ans(e) :- EMP(e, s, d), DEP(d, l)");
  Result<ConjunctiveQuery> q2 =
      ParseQuery(catalog, symbols, "ans(e) :- EMP(e, s, d)");
  if (!deps.ok() || !q1.ok() || !q2.ok()) {
    std::printf("parse error\n");
    return 1;
  }

  // The authority, serving real sockets (what verdict_authorityd wraps as a
  // standalone process).
  auto authority = std::make_shared<VerdictAuthority>();
  net::VerdictAuthorityServer server(authority);
  Status started = server.Start();
  if (!started.ok()) {
    std::printf("listen failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("authority listening on 127.0.0.1:%u\n\n",
              unsigned{server.port()});

  std::printf("engine A (decides and publishes over TCP):\n");
  {
    ContainmentEngine a(&catalog, &symbols, TcpConfig(server.port()));
    RunQuestions("engine A", a, *q1, *q2, *deps);
    // Scope exit drains the write-behind publish over the socket.
  }
  std::printf("authority now holds %zu verdicts\n\n", authority->size());

  std::printf("engine B (cold caches, its own TCP connection):\n");
  ContainmentEngine b(&catalog, &symbols, TcpConfig(server.port()));
  RunQuestions("engine B", b, *q1, *q2, *deps);

  const net::AuthorityServerStats sstats = server.stats();
  std::printf("server: %llu connections, %llu requests served\n",
              static_cast<unsigned long long>(sstats.connections_accepted),
              static_cast<unsigned long long>(sstats.requests_served));
  if (b.stats().chases_built == 0 && b.stats().remote_hits > 0) {
    std::printf("engine B never chased: every verdict arrived over the "
                "socket.\n");
  }
  server.Stop();
  return 0;
}
