// IND implication two ways (Corollary 2.3): the axiomatic CFP proof system
// (reflexivity / projection-permutation / transitivity) and the paper's
// reduction to conjunctive-query containment. Both deciders answer a chain
// of implication questions over a three-relation schema; the reduction also
// prints the two queries it builds.
//
//   $ ./build/examples/ind_inference_demo
#include <cstdio>

#include "deps/deps_parser.h"
#include "inference/ind_inference.h"
#include "schema/catalog.h"

using namespace cqchase;

int main() {
  Catalog catalog;
  (void)catalog.AddRelation("R", {"a", "b", "c"});
  (void)catalog.AddRelation("S", {"x", "y", "z"});
  (void)catalog.AddRelation("T", {"u", "v"});

  // Given INDs: R[a,b] <= S[x,y], S[x,y] <= R[b,c], S[x] <= T[u].
  Result<DependencySet> deps = ParseDependencies(catalog,
                                                 "R[a,b] <= S[x,y]\n"
                                                 "S[x,y] <= R[b,c]\n"
                                                 "S[x] <= T[u]");
  if (!deps.ok()) {
    std::printf("parse error: %s\n", deps.status().ToString().c_str());
    return 1;
  }
  std::printf("Sigma:\n%s\n", deps->ToString(catalog).c_str());

  // Queries to the oracle. Expected answers, by hand:
  //   R[a,b] <= R[b,c]  yes (transitivity through S)
  //   R[a]   <= S[x]    yes (projection of the first IND)
  //   R[a]   <= T[u]    yes (projection + transitivity)
  //   R[b,a] <= S[y,x]  yes (permutation of the first IND)
  //   R[a,c] <= S[x,z]  no  (no IND relates column c of R to z of S)
  //   T[u]   <= R[a]    no  (nothing constrains T)
  const char* questions[] = {
      "R[a,b] <= R[b,c]", "R[a] <= S[x]",    "R[a] <= T[u]",
      "R[b,a] <= S[y,x]", "R[a,c] <= S[x,z]", "T[u] <= R[a]",
  };

  std::printf("%-22s %10s %12s\n", "does Sigma imply...", "axiomatic",
              "containment");
  for (const char* text : questions) {
    Result<InclusionDependency> target = ParseInd(catalog, text);
    if (!target.ok()) {
      std::printf("%-22s parse error\n", text);
      continue;
    }
    Result<bool> ax = IndImpliedAxiomatic(*deps, catalog, *target);
    Result<bool> red = IndImpliedViaContainment(*deps, catalog, *target);
    std::printf("%-22s %10s %12s\n", text,
                ax.ok() ? (*ax ? "yes" : "no") : "error",
                red.ok() ? (*red ? "yes" : "no") : "error");
  }

  std::printf(
      "\nNote: IND inference alone is PSPACE-complete in general "
      "(Casanova-Fagin-\nPapadimitriou), yet polynomial for every fixed "
      "width — these deciders agree\nbecause finite and unrestricted "
      "implication coincide for INDs.\n");
  return 0;
}
