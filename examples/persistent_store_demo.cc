// Persistent verdict store: the engine's second cache tier survives process
// restarts. Run this binary twice with the same store directory:
//
//   $ ./build/persistent_store_demo /tmp/cq-verdicts
//   $ ./build/persistent_store_demo /tmp/cq-verdicts   # warm: zero chases
//
// The first run decides its containment questions by chasing and persists
// every verdict (write-behind log, compacted into a snapshot on shutdown).
// The second run — a fresh process with cold in-memory caches — answers the
// identical questions from the store without building a single chase, which
// is exactly what a restarting fleet node wants.
#include <cstdio>

#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "engine/engine.h"
#include "schema/catalog.h"
#include "symbols/symbol_table.h"

using namespace cqchase;

int main(int argc, char** argv) {
  const char* store_dir = argc > 1 ? argv[1] : "verdict-store-demo";

  Catalog catalog;
  if (!catalog.AddRelation("EMP", {"eno", "sal", "dept"}).ok() ||
      !catalog.AddRelation("DEP", {"dept", "loc"}).ok()) {
    std::printf("schema error\n");
    return 1;
  }
  Result<DependencySet> deps =
      ParseDependencies(catalog, "EMP[dept] <= DEP[dept]");
  SymbolTable symbols;
  Result<ConjunctiveQuery> q1 =
      ParseQuery(catalog, symbols, "ans(e) :- EMP(e, s, d), DEP(d, l)");
  Result<ConjunctiveQuery> q2 =
      ParseQuery(catalog, symbols, "ans(e) :- EMP(e, s, d)");
  if (!deps.ok() || !q1.ok() || !q2.ok()) {
    std::printf("parse error\n");
    return 1;
  }

  // The only change from a store-less engine: one config knob. Empty path =
  // the tier is off and nothing else differs.
  EngineConfig config;
  config.store_path = store_dir;
  ContainmentEngine engine(&catalog, &symbols, config);
  if (engine.store() == nullptr) {
    std::printf("store did not open: %s\n",
                engine.store_status().ToString().c_str());
    return 1;
  }
  const VerdictStoreStats opened = engine.store()->stats();
  std::printf("store %s: %llu entries restored (%llu snapshot, %llu log)\n",
              store_dir, static_cast<unsigned long long>(opened.entries),
              static_cast<unsigned long long>(opened.snapshot_entries_loaded),
              static_cast<unsigned long long>(opened.log_entries_replayed));

  for (auto [name, from, to] : {std::tuple{"Q1 <= Q2", &*q1, &*q2},
                                std::tuple{"Q2 <= Q1", &*q2, &*q1}}) {
    Result<EngineVerdict> v = engine.Check(*from, *to, *deps);
    if (!v.ok()) {
      std::printf("containment error: %s\n", v.status().ToString().c_str());
      return 1;
    }
    std::printf("%s: %-3s  (%s)\n", name, v->report.contained ? "yes" : "no",
                v->store_hit       ? "served from persistent store"
                : v->cache_hit     ? "served from in-memory cache"
                                   : "decided by chasing");
  }

  const EngineStats stats = engine.stats();
  std::printf("\nthis run: %llu chases built, %llu store hits, %llu store "
              "writes\n",
              static_cast<unsigned long long>(stats.chases_built),
              static_cast<unsigned long long>(stats.store_hits),
              static_cast<unsigned long long>(stats.store_writes));
  if (opened.entries > 0 && stats.chases_built == 0) {
    std::printf("warm start: every verdict came from the store — no chase "
                "was ever built\n");
  } else {
    std::printf("cold start: verdicts persisted; run again to see the warm "
                "start\n");
  }
  return 0;  // engine destruction flushes the log and compacts the snapshot
}
