// Proof-carrying containment, async: submit ONE request with
// want_certificate = true and get back both the verdict and a Theorem 2 NP
// certificate extracted from the same chase the decision ran (watch
// chases_built: deciding + certifying costs one chase, not two). Print the
// proof, verify it independently, then corrupt it and watch the verifier
// reject. Also prints a CFP derivation for an IND implication — the "short
// proofs" the paper's introduction motivates ("suppose the equivalence
// problem were in NP. Then it would be possible to give short proofs of
// equivalence").
//
//   $ ./build/examples/certificate_demo
#include <cstdio>

#include "core/certificate.h"
#include "cq/cq_parser.h"
#include "deps/deps_parser.h"
#include "engine/engine.h"
#include "inference/ind_inference.h"
#include "schema/catalog.h"

using namespace cqchase;

int main() {
  // Schema: a three-step reporting chain.
  Catalog catalog;
  (void)catalog.AddRelation("EMP", {"eno", "mgr"});
  (void)catalog.AddRelation("MGR", {"mno", "dir"});
  (void)catalog.AddRelation("DIR", {"dno"});
  Result<DependencySet> deps = ParseDependencies(catalog,
                                                 "EMP[mgr] <= MGR[mno]\n"
                                                 "MGR[dir] <= DIR[dno]\n"
                                                 "MGR[mno] <= EMP[eno]");
  if (!deps.ok()) return 1;

  SymbolTable symbols;
  // Q scans employees; Q' additionally demands the manager and director
  // rows — which the INDs guarantee, so Q ⊆ Q' under Σ.
  ConjunctiveQuery q = *ParseQuery(catalog, symbols, "ans(e) :- EMP(e, m)");
  ConjunctiveQuery q_prime = *ParseQuery(
      catalog, symbols, "ans(e) :- EMP(e, m), MGR(m, d), DIR(d)");
  std::printf("Q : %s\nQ': %s\nSigma: %s\n\n", q.ToString().c_str(),
              q_prime.ToString().c_str(), deps->ToString(catalog).c_str());

  // One submission answers "is Q contained?" AND "prove it": the
  // certificate is pulled out of the decision chase itself.
  ContainmentEngine engine(&catalog, &symbols);
  RequestOptions options;
  options.want_certificate = true;
  Result<EngineOutcome> outcome =
      engine.Submit(ContainmentRequest::Own(q, q_prime, *deps, options)).Get();
  if (!outcome.ok()) {
    std::printf("error: %s\n", outcome.status().ToString().c_str());
    return 1;
  }
  if (!outcome->verdict.report.contained ||
      !outcome->certificate.has_value()) {
    std::printf("not contained: no certificate\n");
    return 1;
  }
  const ContainmentCertificate& cert = *outcome->certificate;
  EngineStats stats = engine.stats();
  std::printf(
      "Sigma |= Q <=inf Q' — certificate (%zu symbols) from %llu chase(s), "
      "strategy %s:\n%s\n",
      cert.SizeInSymbols(),
      static_cast<unsigned long long>(stats.chases_built),
      std::string(ToString(outcome->verdict.strategy)).c_str(),
      cert.ToString(catalog, symbols).c_str());

  Status verdict = VerifyCertificate(cert, q, q_prime, *deps, symbols);
  std::printf("independent verification: %s\n\n",
              verdict.ok() ? "VALID" : verdict.ToString().c_str());

  // Corrupt the derivation: claim the MGR row came from the wrong IND.
  ContainmentCertificate tampered = cert;
  if (!tampered.steps.empty()) {
    tampered.steps[0].ind_index ^= 1;
    Status rejected = VerifyCertificate(tampered, q, q_prime, *deps, symbols);
    std::printf("tampered certificate (wrong IND label): %s\n\n",
                rejected.ok() ? "ACCEPTED — bug!" : rejected.ToString().c_str());
  }

  // A CFP derivation: managers are employees (MGR[mno] <= EMP[eno]), so
  // every manager referenced by an employee is an employee number too:
  // Sigma implies EMP[mgr] <= EMP[eno] by transitivity through MGR.
  Result<InclusionDependency> target =
      ParseInd(catalog, "EMP[mgr] <= EMP[eno]");
  if (target.ok()) {
    Result<std::optional<IndDerivation>> derivation =
        DeriveInd(*deps, catalog, *target);
    if (derivation.ok() && derivation->has_value()) {
      std::printf("Sigma |= EMP[mgr] <= EMP[eno], derivation:\n%s",
                  (*derivation)->ToString(*deps, catalog, *target).c_str());
    } else {
      std::printf("derivation missing — bug\n");
    }
  }
  return 0;
}
